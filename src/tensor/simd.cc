// Runtime SIMD dispatch. The level is resolved exactly once (CPUID plus the
// GRIMP_SIMD env knob) and stored as one atomic table pointer; every kernel
// call site does a single relaxed load. SetSimdLevel/ApplySimdChoice swap
// the pointer between kernel invocations (tests, GrimpOptions plumbing).

#include "tensor/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/env.h"
#include "common/metrics.h"

namespace grimp {
namespace simd {

// Defined in simd_avx2.cc; returns null when that TU was built without
// AVX2+FMA support in the toolchain.
const KernelTable* Avx2KernelsImpl();

namespace {

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

// Gauges mirror the dispatch state so the selected path shows up in metrics
// dumps next to the gemm counters.
void PublishLevel(SimdLevel level) {
  static Gauge& level_gauge =
      MetricsRegistry::Global().GetGauge("tensor.simd.level");
  static Gauge& avx2_gauge =
      MetricsRegistry::Global().GetGauge("tensor.simd.avx2_supported");
  level_gauge.Set(static_cast<int64_t>(level));
  avx2_gauge.Set(SimdAvx2Supported() ? 1 : 0);
}

const KernelTable* TableFor(SimdLevel level) {
  if (level == SimdLevel::kAvx2) {
    const KernelTable* t = Avx2KernelsImpl();
    if (t != nullptr) return t;
  }
  return ScalarKernels();
}

// Initial resolution: best supported level, downgraded by GRIMP_SIMD.
SimdLevel ResolveFromEnvironment() {
  SimdLevel best =
      SimdAvx2Supported() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  const char* env = EnvOverrides::Raw(kEnvSimd);
  if (env == nullptr || env[0] == '\0') return best;
  SimdLevel requested;
  bool is_auto = false;
  if (!ParseSimdChoice(env, &requested, &is_auto)) {
    std::fprintf(stderr,
                 "grimp: unknown GRIMP_SIMD=\"%s\" (want auto|avx2|scalar); "
                 "using %s\n",
                 env, SimdLevelName(best));
    return best;
  }
  if (is_auto) return best;
  if (requested > best) {
    std::fprintf(stderr,
                 "grimp: GRIMP_SIMD=%s not supported on this CPU/build; "
                 "falling back to %s\n",
                 SimdLevelName(requested), SimdLevelName(best));
    return best;
  }
  return requested;
}

std::atomic<const KernelTable*> g_table{nullptr};

const KernelTable* ResolveOnce() {
  // Benign race: concurrent first calls resolve the same value.
  const SimdLevel level = ResolveFromEnvironment();
  const KernelTable* t = TableFor(level);
  g_table.store(t, std::memory_order_relaxed);
  PublishLevel(level);
  return t;
}

}  // namespace

const KernelTable& Kernels() {
  const KernelTable* t = g_table.load(std::memory_order_relaxed);
  if (t == nullptr) t = ResolveOnce();
  return *t;
}

const KernelTable* Avx2Kernels() {
  if (!SimdAvx2Supported()) return nullptr;
  return Avx2KernelsImpl();
}

}  // namespace simd

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      return "scalar";
  }
  return "scalar";
}

bool SimdAvx2Supported() {
  static const bool supported =
      simd::CpuHasAvx2Fma() && simd::Avx2KernelsImpl() != nullptr;
  return supported;
}

SimdLevel ActiveSimdLevel() {
  const simd::KernelTable& t = simd::Kernels();
  return std::strcmp(t.name, "avx2") == 0 ? SimdLevel::kAvx2
                                          : SimdLevel::kScalar;
}

SimdLevel SetSimdLevel(SimdLevel level) {
  if (level == SimdLevel::kAvx2 && !SimdAvx2Supported()) {
    level = SimdLevel::kScalar;
  }
  simd::g_table.store(simd::TableFor(level), std::memory_order_relaxed);
  simd::PublishLevel(level);
  return level;
}

bool ParseSimdChoice(const std::string& choice, SimdLevel* level,
                     bool* is_auto) {
  *is_auto = false;
  if (choice == "auto") {
    *is_auto = true;
    *level = SimdAvx2Supported() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
    return true;
  }
  if (choice == "avx2") {
    *level = SimdLevel::kAvx2;
    return true;
  }
  if (choice == "scalar") {
    *level = SimdLevel::kScalar;
    return true;
  }
  return false;
}

void ApplySimdChoice(const std::string& choice) {
  SimdLevel level;
  bool is_auto = false;
  if (!ParseSimdChoice(choice, &level, &is_auto)) return;
  if (is_auto) {
    // Re-resolve from the environment so GRIMP_SIMD=scalar still wins over
    // an options default of "auto".
    simd::ResolveOnce();
    return;
  }
  SetSimdLevel(level);
}

}  // namespace grimp
