#ifndef GRIMP_TENSOR_SIMD_H_
#define GRIMP_TENSOR_SIMD_H_

#include <cstdint>
#include <string>

namespace grimp {

// Instruction-set tier of the tensor kernels. Resolved once per process
// (CPUID + the GRIMP_SIMD env knob) and overridable at runtime via
// SetSimdLevel / GrimpOptions::simd; every kernel call reads the active
// table through one atomic pointer load.
enum class SimdLevel : int {
  kScalar = 0,  // portable C++ reference kernels (any x86-64 / any arch)
  kAvx2 = 1,    // AVX2 + FMA kernels (8-wide float, fused multiply-add)
};

// "scalar" / "avx2".
const char* SimdLevelName(SimdLevel level);

// True when this build carries AVX2 kernels *and* the CPU reports AVX2+FMA.
bool SimdAvx2Supported();

// The level kernels currently dispatch to. First call resolves it: the
// best supported level, downgraded by GRIMP_SIMD=scalar (GRIMP_SIMD=avx2 on
// an unsupported CPU logs a warning and falls back to scalar).
SimdLevel ActiveSimdLevel();

// Forces the dispatch level (test hook + GrimpOptions::simd plumbing).
// Requests above what the CPU supports are clamped; returns the level
// actually applied. Call between kernel invocations, not during one.
SimdLevel SetSimdLevel(SimdLevel level);

// Parses a GRIMP_SIMD-style choice: "auto", "avx2" or "scalar". For "auto",
// *is_auto is set and *level receives the detected best. Returns false on
// any other string.
bool ParseSimdChoice(const std::string& choice, SimdLevel* level,
                     bool* is_auto);

// Applies a validated choice string: "auto" re-resolves from the
// environment + CPUID, otherwise forces the named level (clamped to what
// the CPU supports). Unknown strings are ignored (Validate() rejects them
// before they get here).
void ApplySimdChoice(const std::string& choice);

namespace simd {

// Epilogue fused into the GEMM micro-kernel while the C tile is still in
// registers: C = A*B (+ C when accumulate) (+ bias row) (then max(.,0)
// when relu). Saves the separate bias/activation memory round-trips of a
// MatMul -> AddBias -> Relu tape chain.
struct GemmEpilogue {
  const float* bias = nullptr;  // length n, broadcast-added per row
  bool relu = false;
  bool accumulate = false;      // C += result instead of C = result
};

// One dispatchable kernel set. All kernels are deterministic pure
// functions of their inputs: accumulation order never depends on the
// thread count (callers chunk with fixed grains), so results are
// bit-identical at 1 and N threads for a fixed level. Across levels,
// elementwise kernels (relu/axpy/scale/col_sum/adam/sgd/mse_bwd) perform
// the exact scalar arithmetic lane-wise and stay bit-identical to the
// scalar table; GEMM, segment-mean, softmax and the reduction kernels use
// FMA / polynomial exp / lane-split sums and agree within AllClose
// rtol ~1e-4.
struct KernelTable {
  const char* name;

  // --- Packed GEMM core --------------------------------------------------
  // B panel width of this table's micro-kernel. Packed B for a k x n
  // operand occupies ceil(n/nr)*nr*k floats (tail panel zero-padded).
  int64_t gemm_nr;
  // Packs row-major B (k x n, leading dimension ldb) into nr-wide panels,
  // each panel k*nr floats, contiguous per panel.
  void (*gemm_pack_b)(const float* b, int64_t ldb, int64_t k, int64_t n,
                      float* bp);
  // Same layout from an (n x k) row-major operand, i.e. packs B^T without
  // materializing the transpose (serves MatMulTransB).
  void (*gemm_pack_bt)(const float* b, int64_t ldb, int64_t k, int64_t n,
                       float* bp);
  // Computes C rows [i_begin, i_end): C[i,j] (+)= sum_p A[i,p] * Bpacked[p,j]
  // with the epilogue applied in-register. A is addressed generically as
  // a[i * as_i + p * as_p] ((lda, 1) walks rows, (1, lda) walks columns,
  // i.e. multiplies by A^T). Each C element accumulates over p in ascending
  // order regardless of the tiling, so results are independent of the
  // row-range split (= the thread count).
  void (*gemm)(const float* a, int64_t as_i, int64_t as_p, const float* bp,
               float* c, int64_t ldc, int64_t i_begin, int64_t i_end,
               int64_t k, int64_t n, const GemmEpilogue& ep);

  // --- Elementwise / epilogue kernels ------------------------------------
  // y = max(x, 0)
  void (*relu_fwd)(int64_t n, const float* x, float* y);
  // xg += (y > 0 ? g : 0)   (branchless select)
  void (*relu_bwd)(int64_t n, const float* g, const float* y, float* xg);
  // out = (y > 0 ? g : 0)
  void (*relu_mask)(int64_t n, const float* g, const float* y, float* out);
  // y += alpha * x
  void (*axpy)(int64_t n, float alpha, const float* x, float* y);
  // x *= alpha
  void (*scale)(int64_t n, float alpha, float* x);
  // acc[c] += sum_r x[r, c] over row-major x, rows ascending per column.
  void (*col_sum_acc)(int64_t rows, int64_t cols, const float* x, float* acc);
  // sum_i x[i]^2 accumulated in double.
  double (*sum_squares)(int64_t n, const float* x);

  // --- Graph / loss kernels ----------------------------------------------
  // CSR segment mean over segments [s_begin, s_end): out.row(s) =
  // mean_{e in offsets[s]..offsets[s+1]} x.row(indices[e]); empty segments
  // write zero rows. Writes every element of the covered out rows.
  void (*segment_mean_fwd)(const int32_t* offsets, const int32_t* indices,
                           const float* x, int64_t d, int64_t s_begin,
                           int64_t s_end, float* out);
  // Row-wise softmax of `rows` rows of width `cols` (max-subtracted).
  void (*row_softmax)(int64_t rows, int64_t cols, const float* x, float* y);
  // Masked squared-error sum: returns sum over i with mask[i] != 0 of
  // (pred[i]-tgt[i])^2, counting contributors into *n_valid. mask == null
  // means all rows count.
  double (*mse_sum)(int64_t n, const float* pred, const float* tgt,
                    const float* mask, int64_t* n_valid);
  // pg[i] += coeff * (pred[i] - tgt[i]) where mask[i] != 0.
  void (*mse_bwd)(int64_t n, float coeff, const float* pred, const float* tgt,
                  const float* mask, float* pg);

  // --- Optimizer kernels --------------------------------------------------
  // One Adam step over n contiguous entries; bc1/bc2 are the precomputed
  // bias-correction denominators.
  void (*adam_step)(int64_t n, float lr, float beta1, float beta2, float eps,
                    float weight_decay, float bc1, float bc2, const float* g,
                    float* m, float* v, float* w);
  // vel = momentum * vel + g; w -= lr * vel.
  void (*sgd_momentum)(int64_t n, float lr, float momentum, const float* g,
                       float* vel, float* w);
};

// The active kernel table (one atomic load; resolves the level on first
// use).
const KernelTable& Kernels();

// Per-level tables, for parity tests. Avx2Kernels() is null when the build
// or the CPU lacks AVX2+FMA support (callers must check).
const KernelTable* ScalarKernels();
const KernelTable* Avx2Kernels();

}  // namespace simd
}  // namespace grimp

#endif  // GRIMP_TENSOR_SIMD_H_
