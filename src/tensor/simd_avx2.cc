// AVX2 + FMA kernels. This translation unit is the only one compiled with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt); nothing here runs unless
// runtime dispatch (simd.cc) selected the table after a CPUID check, so the
// rest of the binary stays runnable on baseline x86-64.
//
// Tail discipline: C tiles use masked loads/stores, packed operands are
// zero-padded to the panel width, and elementwise kernels finish ragged
// lanes with scalar loops — no kernel reads or writes past its operands
// (verified under ASan+UBSan, see tests/CMakeLists.txt).

#include "tensor/simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace grimp {
namespace simd {
namespace {

// Micro-tile geometry: 6 x 16 output tile = 12 ymm accumulators + 2 B
// registers + 1 broadcast, fitting the 16-register AVX2 file.
constexpr int64_t kMR = 6;
constexpr int64_t kNR = 16;

// Lane masks for ragged column tails: MaskFor(w) has the low w of 8 lanes
// active.
alignas(32) constexpr int32_t kMaskTable[16] = {
    -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};

inline __m256i MaskFor(int64_t w) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - w));
}

void PackB(const float* b, int64_t ldb, int64_t k, int64_t n, float* bp) {
  for (int64_t j0 = 0; j0 < n; j0 += kNR) {
    const int64_t w = std::min(kNR, n - j0);
    float* panel = bp + (j0 / kNR) * k * kNR;
    if (w == kNR) {
      for (int64_t p = 0; p < k; ++p) {
        const float* src = b + p * ldb + j0;
        float* dst = panel + p * kNR;
        _mm256_storeu_ps(dst, _mm256_loadu_ps(src));
        _mm256_storeu_ps(dst + 8, _mm256_loadu_ps(src + 8));
      }
    } else {
      for (int64_t p = 0; p < k; ++p) {
        const float* src = b + p * ldb + j0;
        float* dst = panel + p * kNR;
        for (int64_t j = 0; j < w; ++j) dst[j] = src[j];
        for (int64_t j = w; j < kNR; ++j) dst[j] = 0.0f;
      }
    }
  }
}

void PackBT(const float* b, int64_t ldb, int64_t k, int64_t n, float* bp) {
  // b is (n x k) row-major; packed[p, j] = b[j, p]. The writes stride kNR,
  // the reads stream one source row at a time.
  for (int64_t j0 = 0; j0 < n; j0 += kNR) {
    const int64_t w = std::min(kNR, n - j0);
    float* panel = bp + (j0 / kNR) * k * kNR;
    for (int64_t j = 0; j < w; ++j) {
      const float* src = b + (j0 + j) * ldb;
      for (int64_t p = 0; p < k; ++p) panel[p * kNR + j] = src[p];
    }
    for (int64_t j = w; j < kNR; ++j) {
      for (int64_t p = 0; p < k; ++p) panel[p * kNR + j] = 0.0f;
    }
  }
}

void Gemm(const float* a, int64_t as_i, int64_t as_p, const float* bp,
          float* c, int64_t ldc, int64_t i_begin, int64_t i_end, int64_t k,
          int64_t n, const GemmEpilogue& ep) {
  // Per-thread A panel: kMR rows interleaved per-p (zero-padded below mr),
  // so the kernel's broadcasts read contiguous memory for both the plain
  // and the transposed A walk.
  thread_local std::vector<float> apack;
  if (static_cast<int64_t>(apack.size()) < kMR * k) {
    apack.resize(static_cast<size_t>(kMR * k));
  }
  float* ap = apack.data();
  const __m256 zero = _mm256_setzero_ps();
  for (int64_t i0 = i_begin; i0 < i_end; i0 += kMR) {
    const int64_t mr = std::min(kMR, i_end - i0);
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t ii = 0; ii < mr; ++ii) {
        ap[p * kMR + ii] = a[(i0 + ii) * as_i + p * as_p];
      }
      for (int64_t ii = mr; ii < kMR; ++ii) ap[p * kMR + ii] = 0.0f;
    }
    for (int64_t j0 = 0; j0 < n; j0 += kNR) {
      const int64_t nr = std::min(kNR, n - j0);
      const float* panel = bp + (j0 / kNR) * k * kNR;
      __m256 acc[kMR][2];
      for (int64_t ii = 0; ii < kMR; ++ii) {
        acc[ii][0] = zero;
        acc[ii][1] = zero;
      }
      for (int64_t p = 0; p < k; ++p) {
        const __m256 b0 = _mm256_loadu_ps(panel + p * kNR);
        const __m256 b1 = _mm256_loadu_ps(panel + p * kNR + 8);
        const float* arow = ap + p * kMR;
#pragma GCC unroll 6
        for (int64_t ii = 0; ii < kMR; ++ii) {
          const __m256 av = _mm256_broadcast_ss(arow + ii);
          acc[ii][0] = _mm256_fmadd_ps(av, b0, acc[ii][0]);
          acc[ii][1] = _mm256_fmadd_ps(av, b1, acc[ii][1]);
        }
      }
      if (nr == kNR) {
        __m256 bias0 = zero, bias1 = zero;
        if (ep.bias != nullptr) {
          bias0 = _mm256_loadu_ps(ep.bias + j0);
          bias1 = _mm256_loadu_ps(ep.bias + j0 + 8);
        }
        for (int64_t ii = 0; ii < mr; ++ii) {
          float* crow = c + (i0 + ii) * ldc + j0;
          __m256 v0 = acc[ii][0];
          __m256 v1 = acc[ii][1];
          if (ep.accumulate) {
            v0 = _mm256_add_ps(v0, _mm256_loadu_ps(crow));
            v1 = _mm256_add_ps(v1, _mm256_loadu_ps(crow + 8));
          }
          if (ep.bias != nullptr) {
            v0 = _mm256_add_ps(v0, bias0);
            v1 = _mm256_add_ps(v1, bias1);
          }
          if (ep.relu) {
            v0 = _mm256_max_ps(v0, zero);
            v1 = _mm256_max_ps(v1, zero);
          }
          _mm256_storeu_ps(crow, v0);
          _mm256_storeu_ps(crow + 8, v1);
        }
      } else {
        const int64_t w0 = std::min<int64_t>(nr, 8);
        const int64_t w1 = nr - w0;
        const __m256i m0 = MaskFor(w0);
        const __m256i m1 = MaskFor(w1);
        __m256 bias0 = zero, bias1 = zero;
        if (ep.bias != nullptr) {
          bias0 = _mm256_maskload_ps(ep.bias + j0, m0);
          bias1 = _mm256_maskload_ps(ep.bias + j0 + 8, m1);
        }
        for (int64_t ii = 0; ii < mr; ++ii) {
          float* crow = c + (i0 + ii) * ldc + j0;
          __m256 v0 = acc[ii][0];
          __m256 v1 = acc[ii][1];
          if (ep.accumulate) {
            v0 = _mm256_add_ps(v0, _mm256_maskload_ps(crow, m0));
            v1 = _mm256_add_ps(v1, _mm256_maskload_ps(crow + 8, m1));
          }
          if (ep.bias != nullptr) {
            v0 = _mm256_add_ps(v0, bias0);
            v1 = _mm256_add_ps(v1, bias1);
          }
          if (ep.relu) {
            v0 = _mm256_max_ps(v0, zero);
            v1 = _mm256_max_ps(v1, zero);
          }
          _mm256_maskstore_ps(crow, m0, v0);
          if (w1 > 0) _mm256_maskstore_ps(crow + 8, m1, v1);
        }
      }
    }
  }
}

// --- Elementwise kernels ---------------------------------------------------
// These mirror the scalar table's arithmetic exactly (separate mul + add,
// IEEE sqrt/div, max against +0.0), so their results are bit-identical to
// the scalar kernels; only the GEMM/segment-mean/softmax/reduction kernels
// trade bit-identity for FMA/polynomial speed.

void ReluFwd(int64_t n, const float* x, float* y) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void ReluBwd(int64_t n, const float* g, const float* y, float* xg) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(y + i), zero, _CMP_GT_OQ);
    const __m256 add = _mm256_and_ps(mask, _mm256_loadu_ps(g + i));
    _mm256_storeu_ps(xg + i, _mm256_add_ps(_mm256_loadu_ps(xg + i), add));
  }
  for (; i < n; ++i) xg[i] += y[i] > 0.0f ? g[i] : 0.0f;
}

void ReluMask(int64_t n, const float* g, const float* y, float* out) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 mask = _mm256_cmp_ps(_mm256_loadu_ps(y + i), zero, _CMP_GT_OQ);
    _mm256_storeu_ps(out + i, _mm256_and_ps(mask, _mm256_loadu_ps(g + i)));
  }
  for (; i < n; ++i) out[i] = y[i] > 0.0f ? g[i] : 0.0f;
}

void Axpy(int64_t n, float alpha, const float* x, float* y) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(int64_t n, float alpha, float* x) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void ColSumAcc(int64_t rows, int64_t cols, const float* x, float* acc) {
  // Column strips held in registers across the whole row walk; each
  // accumulator starts from acc[c] so the add sequence per column equals
  // the scalar row-ascending order exactly.
  int64_t c = 0;
  for (; c + 32 <= cols; c += 32) {
    __m256 v0 = _mm256_loadu_ps(acc + c);
    __m256 v1 = _mm256_loadu_ps(acc + c + 8);
    __m256 v2 = _mm256_loadu_ps(acc + c + 16);
    __m256 v3 = _mm256_loadu_ps(acc + c + 24);
    for (int64_t r = 0; r < rows; ++r) {
      const float* row = x + r * cols + c;
      v0 = _mm256_add_ps(v0, _mm256_loadu_ps(row));
      v1 = _mm256_add_ps(v1, _mm256_loadu_ps(row + 8));
      v2 = _mm256_add_ps(v2, _mm256_loadu_ps(row + 16));
      v3 = _mm256_add_ps(v3, _mm256_loadu_ps(row + 24));
    }
    _mm256_storeu_ps(acc + c, v0);
    _mm256_storeu_ps(acc + c + 8, v1);
    _mm256_storeu_ps(acc + c + 16, v2);
    _mm256_storeu_ps(acc + c + 24, v3);
  }
  for (; c + 8 <= cols; c += 8) {
    __m256 v = _mm256_loadu_ps(acc + c);
    for (int64_t r = 0; r < rows; ++r) {
      v = _mm256_add_ps(v, _mm256_loadu_ps(x + r * cols + c));
    }
    _mm256_storeu_ps(acc + c, v);
  }
  for (; c < cols; ++c) {
    float v = acc[c];
    for (int64_t r = 0; r < rows; ++r) v += x[r * cols + c];
    acc[c] = v;
  }
}

double SumSquares(int64_t n, const float* x) {
  // Four double lanes, combined low-to-high at the end; deterministic for a
  // given n but a different association than the scalar table (documented).
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    acc = _mm256_fmadd_pd(v, v, acc);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < n; ++i) sum += static_cast<double>(x[i]) * x[i];
  return sum;
}

void SegmentMeanFwd(const int32_t* offsets, const int32_t* indices,
                    const float* x, int64_t d, int64_t s_begin, int64_t s_end,
                    float* out) {
  for (int64_t s = s_begin; s < s_end; ++s) {
    float* orow = out + s * d;
    const int32_t begin = offsets[s];
    const int32_t end = offsets[s + 1];
    if (begin == end) {
      std::memset(orow, 0, static_cast<size_t>(d) * sizeof(float));
      continue;
    }
    const float inv = 1.0f / static_cast<float>(end - begin);
    const __m256 vinv = _mm256_set1_ps(inv);
    int64_t c = 0;
    // 32-column strips: one pass over the neighbor list per strip, four
    // accumulators live in registers.
    for (; c + 32 <= d; c += 32) {
      __m256 v0 = _mm256_setzero_ps();
      __m256 v1 = _mm256_setzero_ps();
      __m256 v2 = _mm256_setzero_ps();
      __m256 v3 = _mm256_setzero_ps();
      for (int32_t e = begin; e < end; ++e) {
        const float* xrow = x + static_cast<int64_t>(indices[e]) * d + c;
        v0 = _mm256_fmadd_ps(_mm256_loadu_ps(xrow), vinv, v0);
        v1 = _mm256_fmadd_ps(_mm256_loadu_ps(xrow + 8), vinv, v1);
        v2 = _mm256_fmadd_ps(_mm256_loadu_ps(xrow + 16), vinv, v2);
        v3 = _mm256_fmadd_ps(_mm256_loadu_ps(xrow + 24), vinv, v3);
      }
      _mm256_storeu_ps(orow + c, v0);
      _mm256_storeu_ps(orow + c + 8, v1);
      _mm256_storeu_ps(orow + c + 16, v2);
      _mm256_storeu_ps(orow + c + 24, v3);
    }
    for (; c + 8 <= d; c += 8) {
      __m256 v = _mm256_setzero_ps();
      for (int32_t e = begin; e < end; ++e) {
        const float* xrow = x + static_cast<int64_t>(indices[e]) * d + c;
        v = _mm256_fmadd_ps(_mm256_loadu_ps(xrow), vinv, v);
      }
      _mm256_storeu_ps(orow + c, v);
    }
    for (; c < d; ++c) {
      float v = 0.0f;
      for (int32_t e = begin; e < end; ++e) {
        v += x[static_cast<int64_t>(indices[e]) * d + c] * inv;
      }
      orow[c] = v;
    }
  }
}

// --- Vectorized exp (Cephes-style polynomial, ~1 ulp relative) ------------

constexpr float kExpHi = 88.3762626647950f;
constexpr float kExpLo = -87.3365478515625f;
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kExpC1 = 0.693359375f;
constexpr float kExpC2 = -2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

inline __m256 Exp256(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  x = _mm256_min_ps(x, _mm256_set1_ps(kExpHi));
  x = _mm256_max_ps(x, _mm256_set1_ps(kExpLo));
  __m256 fx = _mm256_mul_ps(x, _mm256_set1_ps(kLog2e));
  fx = _mm256_add_ps(fx, _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(kExpC1)));
  x = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(kExpC2)));
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(kExpP0);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP1));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP2));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP3));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP4));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP5));
  y = _mm256_fmadd_ps(y, z, _mm256_add_ps(x, one));
  const __m256i n = _mm256_cvttps_epi32(fx);
  const __m256i pow2n =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2n));
}

// Scalar mirror of Exp256 for ragged tails (same constants, same op
// sequence, fused polynomial), so a row's tail columns match its lanes.
inline float ExpTail(float x) {
  x = std::min(x, kExpHi);
  x = std::max(x, kExpLo);
  const float fx = std::floor(x * kLog2e + 0.5f);
  x -= fx * kExpC1;
  x -= fx * kExpC2;
  const float z = x * x;
  float y = kExpP0;
  y = std::fmaf(y, x, kExpP1);
  y = std::fmaf(y, x, kExpP2);
  y = std::fmaf(y, x, kExpP3);
  y = std::fmaf(y, x, kExpP4);
  y = std::fmaf(y, x, kExpP5);
  y = std::fmaf(y, z, x + 1.0f);
  const int32_t n = static_cast<int32_t>(fx);
  float pow2n;
  const int32_t bits = (n + 127) << 23;
  std::memcpy(&pow2n, &bits, sizeof(pow2n));
  return y * pow2n;
}

inline float HorizontalMax(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  lo = _mm_max_ps(lo, _mm256_extractf128_ps(v, 1));
  lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  lo = _mm_add_ps(lo, _mm256_extractf128_ps(v, 1));
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

void RowSoftmax(int64_t rows, int64_t cols, const float* x, float* y) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    float* out = y + r * cols;
    float mx = row[0];
    int64_t c = 0;
    if (cols >= 8) {
      __m256 vmax = _mm256_loadu_ps(row);
      for (c = 8; c + 8 <= cols; c += 8) {
        vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row + c));
      }
      mx = HorizontalMax(vmax);
    } else {
      c = 1;
    }
    for (; c < cols; ++c) mx = std::max(mx, row[c]);

    const __m256 vmx = _mm256_set1_ps(mx);
    __m256 vsum = _mm256_setzero_ps();
    float sum = 0.0f;
    for (c = 0; c + 8 <= cols; c += 8) {
      const __m256 e = Exp256(_mm256_sub_ps(_mm256_loadu_ps(row + c), vmx));
      _mm256_storeu_ps(out + c, e);
      vsum = _mm256_add_ps(vsum, e);
    }
    sum = HorizontalSum(vsum);
    for (; c < cols; ++c) {
      const float e = ExpTail(row[c] - mx);
      out[c] = e;
      sum += e;
    }

    const float inv = 1.0f / sum;
    const __m256 vinv = _mm256_set1_ps(inv);
    for (c = 0; c + 8 <= cols; c += 8) {
      _mm256_storeu_ps(out + c, _mm256_mul_ps(_mm256_loadu_ps(out + c), vinv));
    }
    for (; c < cols; ++c) out[c] *= inv;
  }
}

double MseSum(int64_t n, const float* pred, const float* tgt,
              const float* mask, int64_t* n_valid) {
  __m256d acc = _mm256_setzero_pd();
  int64_t valid = 0;
  int64_t i = 0;
  if (mask == nullptr) {
    for (; i + 4 <= n; i += 4) {
      // Difference taken in float first so it matches the scalar kernel's
      // float subtraction exactly before widening.
      const __m256d d = _mm256_cvtps_pd(
          _mm_sub_ps(_mm_loadu_ps(pred + i), _mm_loadu_ps(tgt + i)));
      acc = _mm256_fmadd_pd(d, d, acc);
    }
    valid = i;
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < n; ++i) {
    const float m = mask == nullptr ? 1.0f : mask[i];
    if (m == 0.0f) continue;
    const float d = pred[i] - tgt[i];
    sum += static_cast<double>(d) * d;
    ++valid;
  }
  *n_valid = valid;
  return sum;
}

void MseBwd(int64_t n, float coeff, const float* pred, const float* tgt,
            const float* mask, float* pg) {
  const __m256 vc = _mm256_set1_ps(coeff);
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(pred + i), _mm256_loadu_ps(tgt + i));
    __m256 upd = _mm256_mul_ps(vc, d);
    if (mask != nullptr) {
      const __m256 keep =
          _mm256_cmp_ps(_mm256_loadu_ps(mask + i), zero, _CMP_NEQ_OQ);
      upd = _mm256_and_ps(keep, upd);
    }
    _mm256_storeu_ps(pg + i, _mm256_add_ps(_mm256_loadu_ps(pg + i), upd));
  }
  for (; i < n; ++i) {
    const float m = mask == nullptr ? 1.0f : mask[i];
    if (m == 0.0f) continue;
    pg[i] += coeff * (pred[i] - tgt[i]);
  }
}

void AdamStep(int64_t n, float lr, float beta1, float beta2, float eps,
              float weight_decay, float bc1, float bc2, const float* g,
              float* m, float* v, float* w) {
  const __m256 vb1 = _mm256_set1_ps(beta1);
  const __m256 vb1c = _mm256_set1_ps(1.0f - beta1);
  const __m256 vb2 = _mm256_set1_ps(beta2);
  const __m256 vb2c = _mm256_set1_ps(1.0f - beta2);
  const __m256 vwd = _mm256_set1_ps(weight_decay);
  const __m256 vbc1 = _mm256_set1_ps(bc1);
  const __m256 vbc2 = _mm256_set1_ps(bc2);
  const __m256 veps = _mm256_set1_ps(eps);
  const __m256 vlr = _mm256_set1_ps(lr);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 gi = _mm256_loadu_ps(g + i);
    const __m256 wi = _mm256_loadu_ps(w + i);
    if (weight_decay != 0.0f) {
      gi = _mm256_add_ps(gi, _mm256_mul_ps(vwd, wi));
    }
    const __m256 mi = _mm256_add_ps(_mm256_mul_ps(vb1, _mm256_loadu_ps(m + i)),
                                    _mm256_mul_ps(vb1c, gi));
    const __m256 vi =
        _mm256_add_ps(_mm256_mul_ps(vb2, _mm256_loadu_ps(v + i)),
                      _mm256_mul_ps(vb2c, _mm256_mul_ps(gi, gi)));
    _mm256_storeu_ps(m + i, mi);
    _mm256_storeu_ps(v + i, vi);
    const __m256 mhat = _mm256_div_ps(mi, vbc1);
    const __m256 vhat = _mm256_div_ps(vi, vbc2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
    const __m256 step = _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom);
    _mm256_storeu_ps(w + i, _mm256_sub_ps(wi, step));
  }
  for (; i < n; ++i) {
    float gi = g[i];
    if (weight_decay != 0.0f) gi += weight_decay * w[i];
    m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0f - beta2) * gi * gi;
    const float mhat = m[i] / bc1;
    const float vhat = v[i] / bc2;
    w[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void SgdMomentum(int64_t n, float lr, float momentum, const float* g,
                 float* vel, float* w) {
  const __m256 vmom = _mm256_set1_ps(momentum);
  const __m256 vlr = _mm256_set1_ps(lr);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vi = _mm256_add_ps(
        _mm256_mul_ps(vmom, _mm256_loadu_ps(vel + i)), _mm256_loadu_ps(g + i));
    _mm256_storeu_ps(vel + i, vi);
    _mm256_storeu_ps(
        w + i, _mm256_sub_ps(_mm256_loadu_ps(w + i), _mm256_mul_ps(vlr, vi)));
  }
  for (; i < n; ++i) {
    vel[i] = momentum * vel[i] + g[i];
    w[i] -= lr * vel[i];
  }
}

const KernelTable kAvx2Table = {
    /*name=*/"avx2",
    /*gemm_nr=*/kNR,
    /*gemm_pack_b=*/PackB,
    /*gemm_pack_bt=*/PackBT,
    /*gemm=*/Gemm,
    /*relu_fwd=*/ReluFwd,
    /*relu_bwd=*/ReluBwd,
    /*relu_mask=*/ReluMask,
    /*axpy=*/Axpy,
    /*scale=*/Scale,
    /*col_sum_acc=*/ColSumAcc,
    /*sum_squares=*/SumSquares,
    /*segment_mean_fwd=*/SegmentMeanFwd,
    /*row_softmax=*/RowSoftmax,
    /*mse_sum=*/MseSum,
    /*mse_bwd=*/MseBwd,
    /*adam_step=*/AdamStep,
    /*sgd_momentum=*/SgdMomentum,
};

}  // namespace

// Defined only in this AVX2 build of the TU; simd.cc gates on the CPU check
// before ever dispatching into the table.
const KernelTable* Avx2KernelsImpl() { return &kAvx2Table; }

}  // namespace simd
}  // namespace grimp

#else  // !(__AVX2__ && __FMA__)

namespace grimp {
namespace simd {

// Toolchain could not build AVX2 kernels; dispatch sees no table and stays
// on the scalar one.
const KernelTable* Avx2KernelsImpl() { return nullptr; }

}  // namespace simd
}  // namespace grimp

#endif
