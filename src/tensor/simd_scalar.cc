// Portable reference kernels. Every vectorized table is tested against
// this one; it is also the fallback on CPUs without AVX2 and the forced
// level under GRIMP_SIMD=scalar. Written with fixed trip counts and packed
// operands so the compiler can autovectorize at the baseline ISA.

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/simd.h"

namespace grimp {
namespace simd {
namespace {

// Micro-tile geometry: accumulator tile must fit baseline SSE2 registers
// (4x8 floats = 8 xmm).
constexpr int64_t kMR = 4;
constexpr int64_t kNR = 8;

void PackB(const float* b, int64_t ldb, int64_t k, int64_t n, float* bp) {
  for (int64_t j0 = 0; j0 < n; j0 += kNR) {
    const int64_t w = std::min(kNR, n - j0);
    float* panel = bp + (j0 / kNR) * k * kNR;
    for (int64_t p = 0; p < k; ++p) {
      const float* src = b + p * ldb + j0;
      float* dst = panel + p * kNR;
      for (int64_t j = 0; j < w; ++j) dst[j] = src[j];
      for (int64_t j = w; j < kNR; ++j) dst[j] = 0.0f;
    }
  }
}

void PackBT(const float* b, int64_t ldb, int64_t k, int64_t n, float* bp) {
  // b is (n x k) row-major; packed[p, j] = b[j, p].
  for (int64_t j0 = 0; j0 < n; j0 += kNR) {
    const int64_t w = std::min(kNR, n - j0);
    float* panel = bp + (j0 / kNR) * k * kNR;
    for (int64_t j = 0; j < w; ++j) {
      const float* src = b + (j0 + j) * ldb;
      for (int64_t p = 0; p < k; ++p) panel[p * kNR + j] = src[p];
    }
    for (int64_t j = w; j < kNR; ++j) {
      for (int64_t p = 0; p < k; ++p) panel[p * kNR + j] = 0.0f;
    }
  }
}

void Gemm(const float* a, int64_t as_i, int64_t as_p, const float* bp,
          float* c, int64_t ldc, int64_t i_begin, int64_t i_end, int64_t k,
          int64_t n, const GemmEpilogue& ep) {
  // A panel scratch: kMR rows interleaved per-p so the inner loop reads it
  // contiguously whatever the A strides are (plain or transposed walk).
  // thread_local so pool workers each keep one buffer across calls.
  thread_local std::vector<float> apack;
  if (static_cast<int64_t>(apack.size()) < kMR * k) {
    apack.resize(static_cast<size_t>(kMR * k));
  }
  float* ap = apack.data();
  for (int64_t i0 = i_begin; i0 < i_end; i0 += kMR) {
    const int64_t mr = std::min(kMR, i_end - i0);
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t ii = 0; ii < mr; ++ii) {
        ap[p * kMR + ii] = a[(i0 + ii) * as_i + p * as_p];
      }
      for (int64_t ii = mr; ii < kMR; ++ii) ap[p * kMR + ii] = 0.0f;
    }
    for (int64_t j0 = 0; j0 < n; j0 += kNR) {
      const int64_t nr = std::min(kNR, n - j0);
      const float* panel = bp + (j0 / kNR) * k * kNR;
      float acc[kMR][kNR] = {};
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = panel + p * kNR;
        const float* arow = ap + p * kMR;
        for (int64_t ii = 0; ii < kMR; ++ii) {
          const float av = arow[ii];
          for (int64_t jj = 0; jj < kNR; ++jj) acc[ii][jj] += av * brow[jj];
        }
      }
      for (int64_t ii = 0; ii < mr; ++ii) {
        float* crow = c + (i0 + ii) * ldc + j0;
        for (int64_t jj = 0; jj < nr; ++jj) {
          float v = acc[ii][jj];
          if (ep.accumulate) v += crow[jj];
          if (ep.bias != nullptr) v += ep.bias[j0 + jj];
          if (ep.relu) v = v > 0.0f ? v : 0.0f;
          crow[jj] = v;
        }
      }
    }
  }
}

void ReluFwd(int64_t n, const float* x, float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void ReluBwd(int64_t n, const float* g, const float* y, float* xg) {
  // Branchless select (no conditional store), so the loop vectorizes.
  for (int64_t i = 0; i < n; ++i) xg[i] += y[i] > 0.0f ? g[i] : 0.0f;
}

void ReluMask(int64_t n, const float* g, const float* y, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] = y[i] > 0.0f ? g[i] : 0.0f;
}

void Axpy(int64_t n, float alpha, const float* x, float* y) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(int64_t n, float alpha, float* x) {
  for (int64_t i = 0; i < n; ++i) x[i] *= alpha;
}

void ColSumAcc(int64_t rows, int64_t cols, const float* x, float* acc) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    for (int64_t c = 0; c < cols; ++c) acc[c] += row[c];
  }
}

double SumSquares(int64_t n, const float* x) {
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * x[i];
  }
  return acc;
}

void SegmentMeanFwd(const int32_t* offsets, const int32_t* indices,
                    const float* x, int64_t d, int64_t s_begin, int64_t s_end,
                    float* out) {
  for (int64_t s = s_begin; s < s_end; ++s) {
    float* orow = out + s * d;
    const int32_t begin = offsets[s];
    const int32_t end = offsets[s + 1];
    for (int64_t c = 0; c < d; ++c) orow[c] = 0.0f;
    if (begin == end) continue;
    const float inv = 1.0f / static_cast<float>(end - begin);
    for (int32_t e = begin; e < end; ++e) {
      const float* xrow = x + static_cast<int64_t>(indices[e]) * d;
      for (int64_t c = 0; c < d; ++c) orow[c] += xrow[c] * inv;
    }
  }
}

void RowSoftmax(int64_t rows, int64_t cols, const float* x, float* y) {
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    float* out = y + r * cols;
    float mx = row[0];
    for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      const float e = std::exp(row[c] - mx);
      out[c] = e;
      sum += e;
    }
    const float inv = 1.0f / sum;
    for (int64_t c = 0; c < cols; ++c) out[c] *= inv;
  }
}

double MseSum(int64_t n, const float* pred, const float* tgt,
              const float* mask, int64_t* n_valid) {
  double loss = 0.0;
  int64_t valid = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float m = mask == nullptr ? 1.0f : mask[i];
    if (m == 0.0f) continue;
    const float d = pred[i] - tgt[i];
    loss += static_cast<double>(d) * d;
    ++valid;
  }
  *n_valid = valid;
  return loss;
}

void MseBwd(int64_t n, float coeff, const float* pred, const float* tgt,
            const float* mask, float* pg) {
  for (int64_t i = 0; i < n; ++i) {
    const float m = mask == nullptr ? 1.0f : mask[i];
    if (m == 0.0f) continue;
    pg[i] += coeff * (pred[i] - tgt[i]);
  }
}

void AdamStep(int64_t n, float lr, float beta1, float beta2, float eps,
              float weight_decay, float bc1, float bc2, const float* g,
              float* m, float* v, float* w) {
  for (int64_t i = 0; i < n; ++i) {
    float gi = g[i];
    if (weight_decay != 0.0f) gi += weight_decay * w[i];
    m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0f - beta2) * gi * gi;
    const float mhat = m[i] / bc1;
    const float vhat = v[i] / bc2;
    w[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void SgdMomentum(int64_t n, float lr, float momentum, const float* g,
                 float* vel, float* w) {
  for (int64_t i = 0; i < n; ++i) {
    vel[i] = momentum * vel[i] + g[i];
    w[i] -= lr * vel[i];
  }
}

const KernelTable kScalarTable = {
    /*name=*/"scalar",
    /*gemm_nr=*/kNR,
    /*gemm_pack_b=*/PackB,
    /*gemm_pack_bt=*/PackBT,
    /*gemm=*/Gemm,
    /*relu_fwd=*/ReluFwd,
    /*relu_bwd=*/ReluBwd,
    /*relu_mask=*/ReluMask,
    /*axpy=*/Axpy,
    /*scale=*/Scale,
    /*col_sum_acc=*/ColSumAcc,
    /*sum_squares=*/SumSquares,
    /*segment_mean_fwd=*/SegmentMeanFwd,
    /*row_softmax=*/RowSoftmax,
    /*mse_sum=*/MseSum,
    /*mse_bwd=*/MseBwd,
    /*adam_step=*/AdamStep,
    /*sgd_momentum=*/SgdMomentum,
};

}  // namespace

const KernelTable* ScalarKernels() { return &kScalarTable; }

}  // namespace simd
}  // namespace grimp
