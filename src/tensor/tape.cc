#include "tensor/tape.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/thread_pool.h"
#include "tensor/simd.h"

namespace grimp {

namespace {

// Runs fn(begin, end) over [0, n), chunked onto the global pool when the
// loop is big enough to amortize dispatch; serially (zero overhead, no
// std::function allocation) otherwise. Chunk boundaries depend only on n,
// so any fn touching only its own indices is deterministic at every thread
// count.
template <typename Fn>
void ParallelRange(int64_t n, Fn&& fn) {
  if (ShouldParallelize(n)) {
    ParallelFor(0, n, kParallelThreshold, fn);
  } else {
    fn(0, n);
  }
}

// Row-chunked variant: parallel when the total element count (rows * width)
// is worth it. fn gets a [row_begin, row_end) range.
template <typename Fn>
void ParallelRows(int64_t rows, int64_t width, Fn&& fn) {
  if (width > 0 && ShouldParallelize(rows * width)) {
    const int64_t grain =
        std::max<int64_t>(1, kParallelThreshold / width);
    ParallelFor(0, rows, grain, fn);
  } else {
    fn(0, rows);
  }
}

}  // namespace

Tape::VarId Tape::PushNode(Tensor value) {
  if (static_cast<size_t>(size_) == nodes_.size()) nodes_.emplace_back();
  Node& node = nodes_[size_];
  node.value = std::move(value);
  return size_++;
}

void Tape::Reset() {
  for (VarId id = 0; id < size_; ++id) {
    Node& node = nodes_[id];
    node.value = Tensor();
    node.grad = Tensor();
    node.backward = nullptr;
  }
  size_ = 0;
}

Tape::VarId Tape::Constant(Tensor v) { return PushNode(std::move(v)); }

Tape::VarId Tape::Leaf(Parameter* p) {
  GRIMP_CHECK(p != nullptr);
  Tensor copy = p->value;
  VarId id = PushNode(std::move(copy));
  nodes_[id].backward = [this, id, p]() {
    p->grad.Axpy(1.0f, nodes_[id].grad);
  };
  return id;
}

Tape::VarId Tape::MatMul(VarId a, VarId b) {
  const Tensor& av = nodes_[a].value;
  const Tensor& bv = nodes_[b].value;
  Tensor out = grimp::MatMul(av, bv);
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, a, b]() {
    const Tensor& g = nodes_[id].grad;
    // dA += g * B^T ; dB += A^T * g, accumulated in the GEMM epilogue (no
    // temporary + Axpy round-trip).
    MatMulTransBAcc(g, nodes_[b].value, &GradRef(a));
    MatMulTransAAcc(nodes_[a].value, g, &GradRef(b));
  };
  return id;
}

Tape::VarId Tape::Linear(VarId x, VarId w, VarId bias) {
  return LinearImpl(x, w, bias, /*relu=*/false);
}

Tape::VarId Tape::LinearRelu(VarId x, VarId w, VarId bias) {
  return LinearImpl(x, w, bias, /*relu=*/true);
}

Tape::VarId Tape::LinearImpl(VarId x, VarId w, VarId bias, bool relu) {
  const Tensor& xv = nodes_[x].value;
  const Tensor& wv = nodes_[w].value;
  const Tensor& bv = nodes_[bias].value;
  GRIMP_CHECK_EQ(bv.rows(), 1);
  GRIMP_CHECK_EQ(bv.cols(), wv.cols());
  VarId id = PushNode(MatMulFused(xv, wv, bv, relu));
  nodes_[id].backward = [this, id, x, w, bias, relu]() {
    const Tensor& g = nodes_[id].grad;
    const Tensor& y = nodes_[id].value;
    const simd::KernelTable& kt = simd::Kernels();
    // With the fused ReLU, mask the upstream gradient through the stored
    // activation once; all three gradient accumulations read the result.
    Tensor masked;
    const Tensor* gm = &g;
    if (relu) {
      masked = Tensor::Uninit(g.rows(), g.cols());
      const float* gd = g.data();
      const float* yd = y.data();
      float* md = masked.data();
      ParallelRange(g.size(), [=, &kt](int64_t i0, int64_t i1) {
        kt.relu_mask(i1 - i0, gd + i0, yd + i0, md + i0);
      });
      gm = &masked;
    }
    MatMulTransBAcc(*gm, nodes_[w].value, &GradRef(x));
    MatMulTransAAcc(nodes_[x].value, *gm, &GradRef(w));
    Tensor& bg = GradRef(bias);
    kt.col_sum_acc(gm->rows(), gm->cols(), gm->data(), bg.data());
  };
  return id;
}

Tape::VarId Tape::AddBias(VarId x, VarId bias) {
  const Tensor& xv = nodes_[x].value;
  const Tensor& bv = nodes_[bias].value;
  GRIMP_CHECK_EQ(bv.rows(), 1);
  GRIMP_CHECK_EQ(bv.cols(), xv.cols());
  Tensor out = xv;
  const int64_t n = xv.rows();
  const int64_t d = xv.cols();
  ParallelRows(n, d, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t c = 0; c < d; ++c) out.at(r, c) += bv.at(0, c);
    }
  });
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, x, bias]() {
    const Tensor& g = nodes_[id].grad;
    GradRef(x).Axpy(1.0f, g);
    Tensor& bg = GradRef(bias);
    // Column-chunked so chunks write disjoint bias entries; each column
    // still sums rows in ascending order (deterministic).
    ParallelRows(g.cols(), g.rows(), [&](int64_t c0, int64_t c1) {
      for (int64_t r = 0; r < g.rows(); ++r) {
        for (int64_t c = c0; c < c1; ++c) bg.at(0, c) += g.at(r, c);
      }
    });
  };
  return id;
}

Tape::VarId Tape::Add(VarId a, VarId b) {
  const Tensor& av = nodes_[a].value;
  const Tensor& bv = nodes_[b].value;
  GRIMP_CHECK(av.SameShape(bv));
  Tensor out = av;
  out.Axpy(1.0f, bv);
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, a, b]() {
    GradRef(a).Axpy(1.0f, nodes_[id].grad);
    GradRef(b).Axpy(1.0f, nodes_[id].grad);
  };
  return id;
}

Tape::VarId Tape::Mul(VarId a, VarId b) {
  const Tensor& av = nodes_[a].value;
  const Tensor& bv = nodes_[b].value;
  GRIMP_CHECK(av.SameShape(bv));
  Tensor out = av;
  ParallelRange(out.size(), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] *= bv[i];
  });
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, a, b]() {
    const Tensor& g = nodes_[id].grad;
    Tensor& ag = GradRef(a);
    Tensor& bg = GradRef(b);
    const Tensor& av = nodes_[a].value;
    const Tensor& bv = nodes_[b].value;
    ParallelRange(g.size(), [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        ag[i] += g[i] * bv[i];
        bg[i] += g[i] * av[i];
      }
    });
  };
  return id;
}

Tape::VarId Tape::Scale(VarId x, float alpha) {
  Tensor out = nodes_[x].value;
  ParallelRange(out.size(), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] *= alpha;
  });
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, x, alpha]() {
    GradRef(x).Axpy(alpha, nodes_[id].grad);
  };
  return id;
}

Tape::VarId Tape::RowScale(VarId x, std::vector<float> s) {
  // Wrap the per-call vector so both overloads share one closure shape.
  return RowScale(
      x, std::make_shared<const std::vector<float>>(std::move(s)));
}

Tape::VarId Tape::RowScale(VarId x,
                           std::shared_ptr<const std::vector<float>> s) {
  const Tensor& xv = nodes_[x].value;
  GRIMP_CHECK(s != nullptr);
  GRIMP_CHECK_EQ(static_cast<int64_t>(s->size()), xv.rows());
  const std::vector<float>& sv = *s;
  Tensor out = xv;
  ParallelRows(out.rows(), out.cols(), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t c = 0; c < out.cols(); ++c) out.at(r, c) *= sv[r];
    }
  });
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, x, s = std::move(s)]() {
    const Tensor& g = nodes_[id].grad;
    Tensor& xg = GradRef(x);
    const std::vector<float>& sv = *s;
    ParallelRows(g.rows(), g.cols(), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        for (int64_t c = 0; c < g.cols(); ++c) {
          xg.at(r, c) += g.at(r, c) * sv[r];
        }
      }
    });
  };
  return id;
}

Tape::VarId Tape::Relu(VarId x) {
  const Tensor& xv = nodes_[x].value;
  Tensor out = Tensor::Uninit(xv.rows(), xv.cols());
  {
    const simd::KernelTable& kt = simd::Kernels();
    const float* xd = xv.data();
    float* od = out.data();
    ParallelRange(out.size(), [=, &kt](int64_t i0, int64_t i1) {
      kt.relu_fwd(i1 - i0, xd + i0, od + i0);
    });
  }
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, x]() {
    const Tensor& g = nodes_[id].grad;
    const Tensor& v = nodes_[id].value;
    Tensor& xg = GradRef(x);
    const simd::KernelTable& kt = simd::Kernels();
    const float* gd = g.data();
    const float* vd = v.data();
    float* xgd = xg.data();
    // Branchless select (no conditional store), vectorized per chunk.
    ParallelRange(g.size(), [=, &kt](int64_t i0, int64_t i1) {
      kt.relu_bwd(i1 - i0, gd + i0, vd + i0, xgd + i0);
    });
  };
  return id;
}

Tape::VarId Tape::Tanh(VarId x) {
  Tensor out = nodes_[x].value;
  ParallelRange(out.size(), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) out[i] = std::tanh(out[i]);
  });
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, x]() {
    const Tensor& g = nodes_[id].grad;
    const Tensor& v = nodes_[id].value;
    Tensor& xg = GradRef(x);
    ParallelRange(g.size(), [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        xg[i] += g[i] * (1.0f - v[i] * v[i]);
      }
    });
  };
  return id;
}

Tape::VarId Tape::Sigmoid(VarId x) {
  Tensor out = nodes_[x].value;
  ParallelRange(out.size(), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      out[i] = 1.0f / (1.0f + std::exp(-out[i]));
    }
  });
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, x]() {
    const Tensor& g = nodes_[id].grad;
    const Tensor& v = nodes_[id].value;
    Tensor& xg = GradRef(x);
    ParallelRange(g.size(), [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        xg[i] += g[i] * v[i] * (1.0f - v[i]);
      }
    });
  };
  return id;
}

Tape::VarId Tape::ConcatCols(const std::vector<VarId>& xs) {
  GRIMP_CHECK(!xs.empty());
  const int64_t n = nodes_[xs[0]].value.rows();
  int64_t total_cols = 0;
  for (VarId x : xs) {
    GRIMP_CHECK_EQ(nodes_[x].value.rows(), n);
    total_cols += nodes_[x].value.cols();
  }
  // Every element is written below.
  Tensor out = Tensor::Uninit(n, total_cols);
  ParallelRows(n, total_cols, [&](int64_t r0, int64_t r1) {
    int64_t col_off = 0;
    for (VarId x : xs) {
      const Tensor& v = nodes_[x].value;
      for (int64_t r = r0; r < r1; ++r) {
        for (int64_t c = 0; c < v.cols(); ++c) {
          out.at(r, col_off + c) = v.at(r, c);
        }
      }
      col_off += v.cols();
    }
  });
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, xs]() {
    const Tensor& g = nodes_[id].grad;
    ParallelRows(g.rows(), g.cols(), [&](int64_t r0, int64_t r1) {
      int64_t off = 0;
      for (VarId x : xs) {
        Tensor& xg = GradRef(x);
        for (int64_t r = r0; r < r1; ++r) {
          for (int64_t c = 0; c < xg.cols(); ++c) {
            xg.at(r, c) += g.at(r, off + c);
          }
        }
        off += xg.cols();
      }
    });
  };
  return id;
}

Tape::VarId Tape::ConcatCols(VarId a, VarId b) {
  const Tensor& av = nodes_[a].value;
  const Tensor& bv = nodes_[b].value;
  GRIMP_CHECK_EQ(av.rows(), bv.rows());
  const int64_t n = av.rows();
  const int64_t ac = av.cols();
  const int64_t bc = bv.cols();
  // Every element is written below.
  Tensor out = Tensor::Uninit(n, ac + bc);
  ParallelRows(n, ac + bc, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t c = 0; c < ac; ++c) out.at(r, c) = av.at(r, c);
      for (int64_t c = 0; c < bc; ++c) out.at(r, ac + c) = bv.at(r, c);
    }
  });
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, a, b, ac, bc]() {
    const Tensor& g = nodes_[id].grad;
    Tensor& ag = GradRef(a);
    Tensor& bg = GradRef(b);
    ParallelRows(g.rows(), g.cols(), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        for (int64_t c = 0; c < ac; ++c) ag.at(r, c) += g.at(r, c);
        for (int64_t c = 0; c < bc; ++c) bg.at(r, c) += g.at(r, ac + c);
      }
    });
  };
  return id;
}

Tape::VarId Tape::GatherRows(VarId table, std::vector<int32_t> rows) {
  auto owned = std::make_shared<const std::vector<int32_t>>(std::move(rows));
  // Hoist the pointer: argument evaluation order is unspecified, so taking
  // it inline with std::move(owned) could dereference an emptied pointer.
  const std::vector<int32_t>* ptr = owned.get();
  return GatherRowsImpl(table, ptr, std::move(owned));
}

Tape::VarId Tape::GatherRows(VarId table, const std::vector<int32_t>* rows) {
  return GatherRowsImpl(table, rows, nullptr);
}

Tape::VarId Tape::GatherRowsImpl(VarId table,
                                 const std::vector<int32_t>* rows,
                                 std::shared_ptr<const void> owned) {
  GRIMP_CHECK(rows != nullptr);
  const Tensor& tv = nodes_[table].value;
  const int64_t d = tv.cols();
  Tensor out(static_cast<int64_t>(rows->size()), d);
  // Forward gather is row-disjoint; the backward scatter-add stays serial
  // because duplicate indices in `rows` would race.
  ParallelRows(static_cast<int64_t>(rows->size()), d,
               [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      int32_t r = (*rows)[static_cast<size_t>(i)];
      if (r < 0) continue;  // missing-value sentinel -> zero row
      GRIMP_DCHECK(r < tv.rows());
      for (int64_t c = 0; c < d; ++c) out.at(i, c) = tv.at(r, c);
    }
  });
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, table, rows,
                         owned = std::move(owned)]() {
    const Tensor& g = nodes_[id].grad;
    Tensor& tg = GradRef(table);
    for (size_t i = 0; i < rows->size(); ++i) {
      int32_t r = (*rows)[i];
      if (r < 0) continue;
      for (int64_t c = 0; c < g.cols(); ++c) {
        tg.at(r, c) += g.at(static_cast<int64_t>(i), c);
      }
    }
  };
  return id;
}

Tape::VarId Tape::SliceRows(VarId x, int64_t n) {
  const Tensor& xv = nodes_[x].value;
  GRIMP_CHECK(n >= 0 && n <= xv.rows());
  const int64_t d = xv.cols();
  Tensor out = Tensor::Uninit(n, d);
  if (n * d > 0) {
    std::memcpy(out.data(), xv.data(),
                static_cast<size_t>(n * d) * sizeof(float));
  }
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, x]() {
    const Tensor& g = nodes_[id].grad;
    Tensor& xg = GradRef(x);
    float* dst = xg.data();
    const float* src = g.data();
    // The slice is a contiguous row-major prefix, so the scatter is a
    // flat prefix add.
    ParallelRange(g.size(), [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) dst[i] += src[i];
    });
  };
  return id;
}

Tape::VarId Tape::SegmentMean(VarId x, std::vector<int32_t> offsets,
                              std::vector<int32_t> indices) {
  auto owned = std::make_shared<
      std::pair<std::vector<int32_t>, std::vector<int32_t>>>(
      std::move(offsets), std::move(indices));
  // Take the pointers before moving `owned` (argument evaluation order is
  // unspecified).
  const std::vector<int32_t>* off = &owned->first;
  const std::vector<int32_t>* idx = &owned->second;
  return SegmentMeanImpl(x, off, idx, std::move(owned));
}

Tape::VarId Tape::SegmentMean(VarId x, const std::vector<int32_t>* offsets,
                              const std::vector<int32_t>* indices) {
  return SegmentMeanImpl(x, offsets, indices, nullptr);
}

Tape::VarId Tape::SegmentMeanImpl(VarId x,
                                  const std::vector<int32_t>* offsets,
                                  const std::vector<int32_t>* indices,
                                  std::shared_ptr<const void> owned) {
  GRIMP_CHECK(offsets != nullptr && indices != nullptr);
  GRIMP_CHECK_GE(offsets->size(), 1u);
  const Tensor& xv = nodes_[x].value;
  const int64_t num_segments = static_cast<int64_t>(offsets->size()) - 1;
  const int64_t d = xv.cols();
  // The kernel writes every covered output element (zero rows for empty
  // segments), so the zero-fill is skipped. Segments own disjoint output
  // rows; the backward scatter-add stays serial because segments share
  // input rows.
  Tensor out = Tensor::Uninit(num_segments, d);
  {
    const simd::KernelTable& kt = simd::Kernels();
    const int32_t* off = offsets->data();
    const int32_t* idx = indices->data();
    const float* xd = xv.data();
    float* od = out.data();
    ParallelRows(num_segments, d, [=, &kt](int64_t s0, int64_t s1) {
      kt.segment_mean_fwd(off, idx, xd, d, s0, s1, od);
    });
  }
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, x, offsets, indices,
                         owned = std::move(owned)]() {
    const Tensor& g = nodes_[id].grad;
    Tensor& xg = GradRef(x);
    const simd::KernelTable& kt = simd::Kernels();
    const int64_t d = g.cols();
    const int64_t num_segments = static_cast<int64_t>(offsets->size()) - 1;
    for (int64_t s = 0; s < num_segments; ++s) {
      const int32_t begin = (*offsets)[s];
      const int32_t end = (*offsets)[s + 1];
      if (begin == end) continue;
      const float inv = 1.0f / static_cast<float>(end - begin);
      const float* grow = g.data() + s * d;
      for (int32_t e = begin; e < end; ++e) {
        const int32_t j = (*indices)[e];
        kt.axpy(d, inv, grow, xg.data() + j * d);
      }
    }
  };
  return id;
}

Tape::VarId Tape::Reshape(VarId x, int64_t rows, int64_t cols) {
  const Tensor& xv = nodes_[x].value;
  GRIMP_CHECK_EQ(xv.size(), rows * cols);
  Tensor out = Tensor::Uninit(rows, cols);
  if (xv.size() > 0) {
    std::memcpy(out.data(), xv.data(),
                static_cast<size_t>(xv.size()) * sizeof(float));
  }
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, x]() {
    const Tensor& g = nodes_[id].grad;
    Tensor& xg = GradRef(x);
    for (int64_t i = 0; i < g.size(); ++i) {
      xg[i] += g[i];  // identical row-major layout
    }
  };
  return id;
}

namespace {
// Writes row-wise softmax of `in` into `out` (may alias).
void RowSoftmaxInto(const Tensor& in, Tensor* out) {
  const simd::KernelTable& kt = simd::Kernels();
  const int64_t cols = in.cols();
  const float* id = in.data();
  float* od = out->data();
  ParallelRows(in.rows(), cols, [=, &kt](int64_t r0, int64_t r1) {
    kt.row_softmax(r1 - r0, cols, id + r0 * cols, od + r0 * cols);
  });
}
}  // namespace

Tape::VarId Tape::RowSoftmax(VarId x) {
  const Tensor& xv = nodes_[x].value;
  // RowSoftmaxInto writes every element.
  Tensor out = Tensor::Uninit(xv.rows(), xv.cols());
  RowSoftmaxInto(xv, &out);
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, x]() {
    const Tensor& g = nodes_[id].grad;
    const Tensor& y = nodes_[id].value;
    Tensor& xg = GradRef(x);
    ParallelRows(g.rows(), g.cols(), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        float dot = 0.0f;
        for (int64_t c = 0; c < g.cols(); ++c) dot += g.at(r, c) * y.at(r, c);
        for (int64_t c = 0; c < g.cols(); ++c) {
          xg.at(r, c) += y.at(r, c) * (g.at(r, c) - dot);
        }
      }
    });
  };
  return id;
}

Tape::VarId Tape::ColBlockDot(VarId v, VarId a, int64_t num_blocks) {
  const Tensor& vv = nodes_[v].value;
  const Tensor& av = nodes_[a].value;
  GRIMP_CHECK_EQ(av.rows(), 1);
  GRIMP_CHECK_EQ(vv.cols() % num_blocks, 0);
  const int64_t d = vv.cols() / num_blocks;
  GRIMP_CHECK_EQ(av.cols(), d);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const int64_t n = vv.rows();
  // Every out entry is written below.
  Tensor out = Tensor::Uninit(n, num_blocks);
  ParallelRows(n, vv.cols(), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t b = 0; b < num_blocks; ++b) {
        float acc = 0.0f;
        for (int64_t c = 0; c < d; ++c) {
          acc += vv.at(r, b * d + c) * av.at(0, c);
        }
        out.at(r, b) = acc * scale;
      }
    }
  });
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, v, a, num_blocks, d, scale]() {
    const Tensor& g = nodes_[id].grad;
    const Tensor& vv = nodes_[v].value;
    const Tensor& av = nodes_[a].value;
    Tensor& vg = GradRef(v);
    Tensor& ag = GradRef(a);
    for (int64_t r = 0; r < g.rows(); ++r) {
      for (int64_t b = 0; b < num_blocks; ++b) {
        const float gb = g.at(r, b) * scale;
        if (gb == 0.0f) continue;
        for (int64_t c = 0; c < d; ++c) {
          vg.at(r, b * d + c) += gb * av.at(0, c);
          ag.at(0, c) += gb * vv.at(r, b * d + c);
        }
      }
    }
  };
  return id;
}

Tape::VarId Tape::ColBlockWeightedSum(VarId v, VarId alpha,
                                      int64_t num_blocks) {
  const Tensor& vv = nodes_[v].value;
  const Tensor& aw = nodes_[alpha].value;
  GRIMP_CHECK_EQ(vv.cols() % num_blocks, 0);
  const int64_t d = vv.cols() / num_blocks;
  GRIMP_CHECK_EQ(aw.rows(), vv.rows());
  GRIMP_CHECK_EQ(aw.cols(), num_blocks);
  const int64_t n = vv.rows();
  Tensor out(n, d);
  ParallelRows(n, vv.cols(), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t b = 0; b < num_blocks; ++b) {
        const float w = aw.at(r, b);
        if (w == 0.0f) continue;
        for (int64_t c = 0; c < d; ++c) {
          out.at(r, c) += w * vv.at(r, b * d + c);
        }
      }
    }
  });
  VarId id = PushNode(std::move(out));
  nodes_[id].backward = [this, id, v, alpha, num_blocks, d]() {
    const Tensor& g = nodes_[id].grad;
    const Tensor& vv = nodes_[v].value;
    const Tensor& aw = nodes_[alpha].value;
    Tensor& vg = GradRef(v);
    Tensor& ag = GradRef(alpha);
    // Both vg and ag are indexed by r only -> row chunks stay disjoint.
    ParallelRows(g.rows(), vv.cols(), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        for (int64_t b = 0; b < num_blocks; ++b) {
          float dot = 0.0f;
          const float w = aw.at(r, b);
          for (int64_t c = 0; c < d; ++c) {
            dot += g.at(r, c) * vv.at(r, b * d + c);
            vg.at(r, b * d + c) += w * g.at(r, c);
          }
          ag.at(r, b) += dot;
        }
      }
    });
  };
  return id;
}

Tape::VarId Tape::SumAll(VarId x) {
  VarId id = PushNode(Tensor::Scalar(nodes_[x].value.Sum()));
  nodes_[id].backward = [this, id, x]() {
    const float g = nodes_[id].grad.scalar();
    Tensor& xg = GradRef(x);
    ParallelRange(xg.size(), [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) xg[i] += g;
    });
  };
  return id;
}

Tape::VarId Tape::SoftmaxCrossEntropy(VarId logits,
                                      std::vector<int32_t> labels,
                                      std::vector<float> class_weights) {
  auto owned = std::make_shared<
      const std::pair<std::vector<int32_t>, std::vector<float>>>(
      std::move(labels), std::move(class_weights));
  // Hoist the pointers before std::move(owned): evaluation order is
  // unspecified.
  const std::vector<int32_t>* lbl = &owned->first;
  const std::vector<float>* cw =
      owned->second.empty() ? nullptr : &owned->second;
  return SoftmaxCrossEntropyImpl(logits, lbl, cw, std::move(owned));
}

Tape::VarId Tape::SoftmaxCrossEntropy(
    VarId logits, const std::vector<int32_t>* labels,
    const std::vector<float>* class_weights) {
  return SoftmaxCrossEntropyImpl(logits, labels, class_weights, nullptr);
}

Tape::VarId Tape::SoftmaxCrossEntropyImpl(
    VarId logits, const std::vector<int32_t>* labels,
    const std::vector<float>* class_weights,
    std::shared_ptr<const void> owned) {
  GRIMP_CHECK(labels != nullptr);
  const Tensor& lv = nodes_[logits].value;
  GRIMP_CHECK_EQ(lv.rows(), static_cast<int64_t>(labels->size()));
  Tensor probs = Tensor::Uninit(lv.rows(), lv.cols());
  RowSoftmaxInto(lv, &probs);
  int64_t n_valid = 0;
  double loss = 0.0;
  for (int64_t r = 0; r < lv.rows(); ++r) {
    const int32_t y = (*labels)[r];
    if (y < 0) continue;
    GRIMP_DCHECK(y < lv.cols());
    const float w = class_weights == nullptr
                        ? 1.0f
                        : (*class_weights)[static_cast<size_t>(y)];
    loss -= w * std::log(std::max(probs.at(r, y), 1e-12f));
    ++n_valid;
  }
  const float inv_n = n_valid > 0 ? 1.0f / static_cast<float>(n_valid) : 0.0f;
  VarId id = PushNode(Tensor::Scalar(static_cast<float>(loss) * inv_n));
  nodes_[id].backward = [this, id, logits, labels, class_weights,
                         owned = std::move(owned), probs = std::move(probs),
                         inv_n]() {
    const float g = nodes_[id].grad.scalar() * inv_n;
    Tensor& lg = GradRef(logits);
    const simd::KernelTable& kt = simd::Kernels();
    const int64_t d = lg.cols();
    ParallelRows(lg.rows(), d, [&, d](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const int32_t y = (*labels)[static_cast<size_t>(r)];
        if (y < 0) continue;
        const float w = class_weights == nullptr
                            ? 1.0f
                            : (*class_weights)[static_cast<size_t>(y)];
        // dL/dz = coeff * (p - onehot): one axpy of the probability row,
        // then the onehot correction at the label column.
        const float coeff = g * w;
        kt.axpy(d, coeff, probs.data() + r * d, lg.data() + r * d);
        lg.at(r, y) -= coeff;
      }
    });
  };
  return id;
}

Tape::VarId Tape::FocalLoss(VarId logits, std::vector<int32_t> labels,
                            float gamma) {
  auto owned = std::make_shared<const std::vector<int32_t>>(std::move(labels));
  const std::vector<int32_t>* lbl = owned.get();
  return FocalLossImpl(logits, lbl, gamma, std::move(owned));
}

Tape::VarId Tape::FocalLoss(VarId logits, const std::vector<int32_t>* labels,
                            float gamma) {
  return FocalLossImpl(logits, labels, gamma, nullptr);
}

Tape::VarId Tape::FocalLossImpl(VarId logits,
                                const std::vector<int32_t>* labels,
                                float gamma,
                                std::shared_ptr<const void> owned) {
  GRIMP_CHECK(labels != nullptr);
  const Tensor& lv = nodes_[logits].value;
  GRIMP_CHECK_EQ(lv.rows(), static_cast<int64_t>(labels->size()));
  Tensor probs = Tensor::Uninit(lv.rows(), lv.cols());
  RowSoftmaxInto(lv, &probs);
  int64_t n_valid = 0;
  double loss = 0.0;
  for (int64_t r = 0; r < lv.rows(); ++r) {
    const int32_t y = (*labels)[r];
    if (y < 0) continue;
    const float pt = std::max(probs.at(r, y), 1e-12f);
    loss -= std::pow(1.0f - pt, gamma) * std::log(pt);
    ++n_valid;
  }
  const float inv_n = n_valid > 0 ? 1.0f / static_cast<float>(n_valid) : 0.0f;
  VarId id = PushNode(Tensor::Scalar(static_cast<float>(loss) * inv_n));
  nodes_[id].backward = [this, id, logits, labels, gamma,
                         owned = std::move(owned), probs = std::move(probs),
                         inv_n]() {
    const float g = nodes_[id].grad.scalar() * inv_n;
    Tensor& lg = GradRef(logits);
    const simd::KernelTable& kt = simd::Kernels();
    const int64_t d = lg.cols();
    ParallelRows(lg.rows(), d, [&, d](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const int32_t y = (*labels)[static_cast<size_t>(r)];
        if (y < 0) continue;
        const float pt = std::max(probs.at(r, y), 1e-12f);
        const float one_m = 1.0f - pt;
        // dL/dp_t for L = -(1-p)^g log p.
        const float dl_dpt =
            gamma * std::pow(one_m, gamma - 1.0f) * std::log(pt) -
            std::pow(one_m, gamma) / pt;
        // dp_t/dz_c = p_y * (onehot - p_c): one axpy of -coeff * probs
        // plus the onehot correction at the label column.
        const float coeff = g * dl_dpt * probs.at(r, y);
        kt.axpy(d, -coeff, probs.data() + r * d, lg.data() + r * d);
        lg.at(r, y) += coeff;
      }
    });
  };
  return id;
}

Tape::VarId Tape::MseLoss(VarId pred, std::vector<float> targets,
                          std::vector<float> mask) {
  auto owned = std::make_shared<
      const std::pair<std::vector<float>, std::vector<float>>>(
      std::move(targets), std::move(mask));
  const std::vector<float>* tgt = &owned->first;
  const std::vector<float>* msk =
      owned->second.empty() ? nullptr : &owned->second;
  return MseLossImpl(pred, tgt, msk, std::move(owned));
}

Tape::VarId Tape::MseLoss(VarId pred, const std::vector<float>* targets,
                          const std::vector<float>* mask) {
  return MseLossImpl(pred, targets, mask, nullptr);
}

Tape::VarId Tape::MseLossImpl(VarId pred, const std::vector<float>* targets,
                              const std::vector<float>* mask,
                              std::shared_ptr<const void> owned) {
  GRIMP_CHECK(targets != nullptr);
  const Tensor& pv = nodes_[pred].value;
  GRIMP_CHECK_EQ(pv.cols(), 1);
  GRIMP_CHECK_EQ(pv.rows(), static_cast<int64_t>(targets->size()));
  const simd::KernelTable& kt = simd::Kernels();
  int64_t n_valid = 0;
  const double loss = kt.mse_sum(pv.rows(), pv.data(), targets->data(),
                                 mask == nullptr ? nullptr : mask->data(),
                                 &n_valid);
  const float inv_n = n_valid > 0 ? 1.0f / static_cast<float>(n_valid) : 0.0f;
  VarId id = PushNode(Tensor::Scalar(static_cast<float>(loss) * inv_n));
  nodes_[id].backward = [this, id, pred, targets, mask,
                         owned = std::move(owned), inv_n]() {
    const float g = nodes_[id].grad.scalar() * inv_n;
    const Tensor& pv = nodes_[pred].value;
    Tensor& pg = GradRef(pred);
    const simd::KernelTable& kt = simd::Kernels();
    kt.mse_bwd(pv.rows(), g * 2.0f, pv.data(), targets->data(),
               mask == nullptr ? nullptr : mask->data(), pg.data());
  };
  return id;
}

void Tape::Backward(VarId root) {
  GRIMP_CHECK(root >= 0 && root < size_);
  GRIMP_CHECK_EQ(nodes_[root].value.size(), 1);
  GradRef(root)[0] = 1.0f;
  for (VarId id = root; id >= 0; --id) {
    Node& node = nodes_[id];
    if (!node.backward) continue;
    // Lazy grads double as a reachability map: a node whose grad was never
    // materialized received no contribution from any consumer, so its
    // backward could only propagate zeros — skip it (and thereby its whole
    // unreached subgraph).
    if (!node.grad.SameShape(node.value)) continue;
    node.backward();
  }
}

}  // namespace grimp
