#ifndef GRIMP_TENSOR_TAPE_H_
#define GRIMP_TENSOR_TAPE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace grimp {

// A trainable tensor. Lives outside the Tape so gradients persist across
// steps; optimizers consume `grad` and the trainer zeroes it each step.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)),
        grad(Tensor::Zeros(value.rows(), value.cols())) {}

  void ZeroGrad() { grad.Zero(); }
};

// Move-only callable holding a backward closure entirely in inline storage.
// Tape ops record one closure per node per step; with std::function the
// captures (this + a few ids, sometimes vectors) exceed its small-buffer
// size and every op would heap-allocate its closure, defeating the arena's
// zero-allocation steady state. kInlineBytes is sized for the largest
// closure in tape.cc (the fused losses capture two vectors and a Tensor);
// the constructor static_asserts so growth is a compile error, not a
// silent regression.
class BackwardFn {
 public:
  static constexpr size_t kInlineBytes = 136;

  BackwardFn() noexcept = default;
  BackwardFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BackwardFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  BackwardFn(F&& f) {  // NOLINT(runtime/explicit)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "closure too large; enlarge BackwardFn::kInlineBytes");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned closure");
    new (storage_) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::value;
  }
  BackwardFn(BackwardFn&& other) noexcept { MoveFrom(&other); }
  BackwardFn& operator=(BackwardFn&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(&other);
    }
    return *this;
  }
  BackwardFn& operator=(std::nullptr_t) noexcept {
    Destroy();
    return *this;
  }
  BackwardFn(const BackwardFn&) = delete;
  BackwardFn& operator=(const BackwardFn&) = delete;
  ~BackwardFn() { Destroy(); }

  explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*move_construct)(void* dst, void* src);
    void (*destroy)(void*);
  };
  template <typename Fn>
  struct OpsFor {
    static constexpr Ops value = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) {
          new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); }};
  };

  void MoveFrom(BackwardFn* other) noexcept {
    ops_ = other->ops_;
    if (ops_ != nullptr) {
      ops_->move_construct(storage_, other->storage_);
      other->Destroy();
    }
  }
  void Destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

// Reverse-mode autodiff over a linear tape. Backward replays the recorded
// closures in reverse order and accumulates leaf gradients into their
// Parameters.
//
// A Tape is reusable: Reset() rewinds it for the next step while keeping the
// node slot storage, so a persistent tape (see core/trainer.cc) records every
// steady-state step without growing the heap — node values come from the
// TensorArena and backward closures live inline in their slots.
//
// Gradients are lazy: recording a node stores no grad tensor. Backward
// materializes (zero-filled, arena-backed) grads only for nodes it actually
// reaches from the root, and skips the backward closure of any node whose
// grad was never touched — such a closure could only scatter zeros. An
// inference-only tape that never calls Backward does no gradient work at
// all. grad(id) on an unreached node still reads as zeros, exactly as if it
// had been eagerly allocated.
//
// All ops GRIMP needs are first-class tape methods (no generic broadcasting
// engine): matrix product, bias, activations, column concat, row gather
// (embedding lookup), segment mean (neighborhood aggregation), row softmax,
// block attention ops, and the fused losses.
class Tape {
 public:
  using VarId = int32_t;

  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // Rewinds the tape for a new forward pass: releases node values, grads and
  // closures (returning tensor buffers to the arena) but keeps the slot
  // vector, so recording the same computation again allocates nothing.
  void Reset();

  // --- Tape inputs -------------------------------------------------------
  // A value the tape does not differentiate.
  VarId Constant(Tensor v);
  // A trainable parameter; Backward accumulates into p->grad. `p` must
  // outlive the tape.
  VarId Leaf(Parameter* p);

  const Tensor& value(VarId id) const { return nodes_[id].value; }
  // Materializes (zeros) on first access of an unreached node's grad.
  const Tensor& grad(VarId id) const {
    return const_cast<Tape*>(this)->GradRef(id);
  }
  int64_t num_nodes() const { return size_; }

  // --- Differentiable ops ------------------------------------------------
  // (M x K) * (K x N) -> (M x N).
  VarId MatMul(VarId a, VarId b);
  // Fused x * w + bias (bias is 1 x N, row-broadcast): one tape node whose
  // forward applies the bias in the GEMM epilogue and whose backward feeds
  // all three gradients from one upstream read (accumulating GEMMs + column
  // sum). Equivalent to AddBias(MatMul(x, w), bias) node-for-node.
  VarId Linear(VarId x, VarId w, VarId bias);
  // Fused relu(x * w + bias). The backward masks the upstream gradient
  // through the stored activation (y > 0) before the three gradient
  // accumulations. Equivalent to Relu(AddBias(MatMul(x, w), bias)).
  VarId LinearRelu(VarId x, VarId w, VarId bias);
  // (N x D) + broadcast (1 x D).
  VarId AddBias(VarId x, VarId bias);
  // Same-shape elementwise sum.
  VarId Add(VarId a, VarId b);
  // Elementwise product (same shape).
  VarId Mul(VarId a, VarId b);
  // alpha * x.
  VarId Scale(VarId x, float alpha);
  // out[r, c] = x[r, c] * s[r]; `s` is a fixed per-row scale (masking /
  // normalization by neighbor-type counts). The shared_ptr overload lets
  // callers reuse one scale vector across steps (see gnn/hetero_sage.cc)
  // without copying it into the tape.
  VarId RowScale(VarId x, std::vector<float> s);
  VarId RowScale(VarId x, std::shared_ptr<const std::vector<float>> s);
  VarId Relu(VarId x);
  VarId Tanh(VarId x);
  VarId Sigmoid(VarId x);
  // Horizontal concatenation; all inputs share the row count.
  VarId ConcatCols(const std::vector<VarId>& xs);
  // Two-input fast path: no index vector on either side of the tape (the
  // GNN concatenates self + neighbor terms once per edge type per step).
  VarId ConcatCols(VarId a, VarId b);
  // out.row(i) = table.row(rows[i]). Gradient scatter-adds (embedding
  // lookup). Negative index -> zero row (the missing-value sentinel).
  VarId GatherRows(VarId table, std::vector<int32_t> rows);
  // Borrowing overload: `rows` is not copied and must stay alive until the
  // tape is Reset or destroyed (the trainer's index scratch outlives both).
  VarId GatherRows(VarId table, const std::vector<int32_t>* rows);
  // out = the first n rows of x (identity-prefix gather without the index
  // vector; the gradient adds into the first n rows of x).
  VarId SliceRows(VarId x, int64_t n);
  // CSR segment mean: out.row(i) = mean_{j in indices[offsets[i] ..
  // offsets[i+1])} x.row(j); empty segments produce zero rows.
  // offsets.size() == num_segments + 1.
  VarId SegmentMean(VarId x, std::vector<int32_t> offsets,
                    std::vector<int32_t> indices);
  // Borrowing overload: offsets/indices are not copied and must stay alive
  // until the tape is Reset or destroyed (graph adjacency outlives both).
  VarId SegmentMean(VarId x, const std::vector<int32_t>* offsets,
                    const std::vector<int32_t>* indices);
  // Reinterprets the (row-major) buffer with a new shape of equal size.
  VarId Reshape(VarId x, int64_t rows, int64_t cols);
  // Row-wise softmax.
  VarId RowSoftmax(VarId x);
  // Block ops for the attention task head. `v` is N x (C*D) (C column
  // blocks of width D), `a` is 1 x D.
  //   ColBlockDot:        out[n, c] = <v[n, block c], a> / sqrt(D)
  //   ColBlockWeightedSum: out[n, :] = sum_c alpha[n, c] * v[n, block c]
  VarId ColBlockDot(VarId v, VarId a, int64_t num_blocks);
  VarId ColBlockWeightedSum(VarId v, VarId alpha, int64_t num_blocks);

  // Sum of all entries (1x1).
  VarId SumAll(VarId x);

  // --- Losses (fused; return 1x1 scalars) --------------------------------
  // Mean softmax cross entropy; labels[i] == -1 is ignored. If
  // class_weights is non-empty it rescales each class's loss term.
  VarId SoftmaxCrossEntropy(VarId logits, std::vector<int32_t> labels,
                            std::vector<float> class_weights = {});
  // Focal loss (Lin et al.): mean over rows of -(1-p_t)^gamma * log(p_t).
  VarId FocalLoss(VarId logits, std::vector<int32_t> labels, float gamma);
  // Mean squared error of pred (N x 1) against targets (size N). A mask
  // entry of 0 drops that row from the mean.
  VarId MseLoss(VarId pred, std::vector<float> targets,
                std::vector<float> mask = {});
  // Borrowing loss overloads: label/target/weight vectors are not copied
  // and must stay alive until the tape is Reset or destroyed. Null
  // class_weights / mask means "none".
  VarId SoftmaxCrossEntropy(VarId logits, const std::vector<int32_t>* labels,
                            const std::vector<float>* class_weights = nullptr);
  VarId FocalLoss(VarId logits, const std::vector<int32_t>* labels,
                  float gamma);
  VarId MseLoss(VarId pred, const std::vector<float>* targets,
                const std::vector<float>* mask = nullptr);

  // Runs reverse-mode accumulation from `root` (must be scalar).
  void Backward(VarId root);

 private:
  struct Node {
    Tensor value;
    Tensor grad;  // empty until materialized by Backward / grad()
    BackwardFn backward;  // empty for constants
  };

  VarId PushNode(Tensor value);
  // Returns the node's grad tensor, materializing it (zero-filled, same
  // shape as the value) on first touch.
  Tensor& GradRef(VarId id) {
    Node& node = nodes_[id];
    if (!node.grad.SameShape(node.value)) {
      node.grad = Tensor::Zeros(node.value.rows(), node.value.cols());
    }
    return node.grad;
  }

  VarId LinearImpl(VarId x, VarId w, VarId bias, bool relu);
  VarId SegmentMeanImpl(VarId x, const std::vector<int32_t>* offsets,
                        const std::vector<int32_t>* indices,
                        std::shared_ptr<const void> owned);
  VarId GatherRowsImpl(VarId table, const std::vector<int32_t>* rows,
                       std::shared_ptr<const void> owned);
  VarId SoftmaxCrossEntropyImpl(VarId logits,
                                const std::vector<int32_t>* labels,
                                const std::vector<float>* class_weights,
                                std::shared_ptr<const void> owned);
  VarId FocalLossImpl(VarId logits, const std::vector<int32_t>* labels,
                      float gamma, std::shared_ptr<const void> owned);
  VarId MseLossImpl(VarId pred, const std::vector<float>* targets,
                    const std::vector<float>* mask,
                    std::shared_ptr<const void> owned);

  std::vector<Node> nodes_;
  VarId size_ = 0;  // live prefix of nodes_; slots beyond are reusable
};

}  // namespace grimp

#endif  // GRIMP_TENSOR_TAPE_H_
