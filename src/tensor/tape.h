#ifndef GRIMP_TENSOR_TAPE_H_
#define GRIMP_TENSOR_TAPE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace grimp {

// A trainable tensor. Lives outside the Tape so gradients persist across
// steps; optimizers consume `grad` and the trainer zeroes it each step.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)),
        grad(Tensor::Zeros(value.rows(), value.cols())) {}

  void ZeroGrad() { grad.Zero(); }
};

// Reverse-mode autodiff over a linear tape. A fresh Tape is built for every
// forward pass; Backward replays the recorded closures in reverse order and
// accumulates leaf gradients into their Parameters.
//
// All ops GRIMP needs are first-class tape methods (no generic broadcasting
// engine): matrix product, bias, activations, column concat, row gather
// (embedding lookup), segment mean (neighborhood aggregation), row softmax,
// block attention ops, and the fused losses.
class Tape {
 public:
  using VarId = int32_t;

  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- Tape inputs -------------------------------------------------------
  // A value the tape does not differentiate.
  VarId Constant(Tensor v);
  // A trainable parameter; Backward accumulates into p->grad. `p` must
  // outlive the tape.
  VarId Leaf(Parameter* p);

  const Tensor& value(VarId id) const { return nodes_[id].value; }
  const Tensor& grad(VarId id) const { return nodes_[id].grad; }
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

  // --- Differentiable ops ------------------------------------------------
  // (M x K) * (K x N) -> (M x N).
  VarId MatMul(VarId a, VarId b);
  // (N x D) + broadcast (1 x D).
  VarId AddBias(VarId x, VarId bias);
  // Same-shape elementwise sum.
  VarId Add(VarId a, VarId b);
  // Elementwise product (same shape).
  VarId Mul(VarId a, VarId b);
  // alpha * x.
  VarId Scale(VarId x, float alpha);
  // out[r, c] = x[r, c] * s[r]; `s` is a fixed per-row scale (masking /
  // normalization by neighbor-type counts).
  VarId RowScale(VarId x, std::vector<float> s);
  VarId Relu(VarId x);
  VarId Tanh(VarId x);
  VarId Sigmoid(VarId x);
  // Horizontal concatenation; all inputs share the row count.
  VarId ConcatCols(const std::vector<VarId>& xs);
  // out.row(i) = table.row(rows[i]). Gradient scatter-adds (embedding
  // lookup). Negative index -> zero row (the missing-value sentinel).
  VarId GatherRows(VarId table, std::vector<int32_t> rows);
  // CSR segment mean: out.row(i) = mean_{j in indices[offsets[i] ..
  // offsets[i+1])} x.row(j); empty segments produce zero rows.
  // offsets.size() == num_segments + 1.
  VarId SegmentMean(VarId x, std::vector<int32_t> offsets,
                    std::vector<int32_t> indices);
  // Reinterprets the (row-major) buffer with a new shape of equal size.
  VarId Reshape(VarId x, int64_t rows, int64_t cols);
  // Row-wise softmax.
  VarId RowSoftmax(VarId x);
  // Block ops for the attention task head. `v` is N x (C*D) (C column
  // blocks of width D), `a` is 1 x D.
  //   ColBlockDot:        out[n, c] = <v[n, block c], a> / sqrt(D)
  //   ColBlockWeightedSum: out[n, :] = sum_c alpha[n, c] * v[n, block c]
  VarId ColBlockDot(VarId v, VarId a, int64_t num_blocks);
  VarId ColBlockWeightedSum(VarId v, VarId alpha, int64_t num_blocks);

  // Sum of all entries (1x1).
  VarId SumAll(VarId x);

  // --- Losses (fused; return 1x1 scalars) --------------------------------
  // Mean softmax cross entropy; labels[i] == -1 is ignored. If
  // class_weights is non-empty it rescales each class's loss term.
  VarId SoftmaxCrossEntropy(VarId logits, std::vector<int32_t> labels,
                            std::vector<float> class_weights = {});
  // Focal loss (Lin et al.): mean over rows of -(1-p_t)^gamma * log(p_t).
  VarId FocalLoss(VarId logits, std::vector<int32_t> labels, float gamma);
  // Mean squared error of pred (N x 1) against targets (size N). A mask
  // entry of 0 drops that row from the mean.
  VarId MseLoss(VarId pred, std::vector<float> targets,
                std::vector<float> mask = {});

  // Runs reverse-mode accumulation from `root` (must be scalar).
  void Backward(VarId root);

 private:
  struct Node {
    Tensor value;
    Tensor grad;  // same shape as value; allocated eagerly
    std::function<void()> backward;  // may be empty (constants)
  };

  VarId PushNode(Tensor value, std::function<void()> backward = nullptr);
  Tensor& mutable_grad(VarId id) { return nodes_[id].grad; }

  std::vector<Node> nodes_;
};

}  // namespace grimp

#endif  // GRIMP_TENSOR_TAPE_H_
