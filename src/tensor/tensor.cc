#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "tensor/simd.h"

namespace grimp {

Tensor Tensor::Full(int64_t rows, int64_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t(1, 1);
  t[0] = value;
  return t;
}

Tensor Tensor::GlorotUniform(int64_t rows, int64_t cols, Rng* rng) {
  Tensor t(rows, cols);
  const float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = rng->UniformReal(-limit, limit);
  }
  return t;
}

Tensor Tensor::RandomNormal(int64_t rows, int64_t cols, float stddev,
                            Rng* rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->NextGaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::FromVector(int64_t rows, int64_t cols,
                          std::vector<float> values) {
  GRIMP_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  Tensor t = Tensor::Uninit(rows, cols);
  if (!values.empty()) {
    std::memcpy(t.data_, values.data(), values.size() * sizeof(float));
  }
  return t;
}

void Tensor::Fill(float value) {
  if (data_ != nullptr) std::fill(data_, data_ + size(), value);
}

void Tensor::Axpy(float alpha, const Tensor& x) {
  GRIMP_CHECK(SameShape(x));
  const float* xs = x.data();
  float* ys = data();
  const int64_t n = size();
  const simd::KernelTable& kt = simd::Kernels();
  if (ShouldParallelize(n)) {
    ParallelFor(0, n, kParallelThreshold, [=, &kt](int64_t b, int64_t e) {
      kt.axpy(e - b, alpha, xs + b, ys + b);
    });
  } else {
    kt.axpy(n, alpha, xs, ys);
  }
}

float Tensor::SumAbs() const {
  float acc = 0.0f;
  for (int64_t i = 0; i < size(); ++i) acc += std::fabs(data_[i]);
  return acc;
}

float Tensor::Sum() const {
  float acc = 0.0f;
  for (int64_t i = 0; i < size(); ++i) acc += data_[i];
  return acc;
}

float Tensor::MaxAbs() const {
  float acc = 0.0f;
  for (int64_t i = 0; i < size(); ++i) {
    acc = std::max(acc, std::fabs(data_[i]));
  }
  return acc;
}

std::string Tensor::ShapeString() const {
  return "[" + std::to_string(rows_) + " x " + std::to_string(cols_) + "]";
}

std::string Tensor::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << ShapeString() << "\n";
  for (int64_t r = 0; r < std::min<int64_t>(rows_, max_rows); ++r) {
    for (int64_t c = 0; c < std::min<int64_t>(cols_, max_cols); ++c) {
      os << at(r, c) << (c + 1 == cols_ ? "" : " ");
    }
    if (cols_ > max_cols) os << "...";
    os << "\n";
  }
  if (rows_ > max_rows) os << "...\n";
  return os.str();
}

namespace {

// Rows per parallel work chunk. Independent of thread count, so chunk
// boundaries (and therefore results) never depend on the pool size.
constexpr int64_t kGemmRowGrain = 64;
// Below this many multiply-adds, pool dispatch costs more than it saves.
constexpr int64_t kGemmParallelFlops = 1 << 16;

// Packs B into the active kernel table's panel layout and dispatches the
// micro-kernel over row panels, in parallel when the problem is big enough
// to amortize the pool. B is row-major K x N (leading dimension ldb) when
// b_transposed is false, row-major N x K when true (packed as B^T without
// materializing the transpose). A is addressed generically as
// a[i * as_i + p * as_p] — (as_i = lda, as_p = 1) walks A's rows,
// (as_i = 1, as_p = lda) walks A's columns (i.e. multiplies by A^T).
// Each C element accumulates over p in ascending order whatever the tiling,
// so the result is bitwise independent of the thread count.
void GemmDispatch(const float* a, int64_t as_i, int64_t as_p, const float* b,
                  int64_t ldb, bool b_transposed, float* c, int64_t ldc,
                  int64_t m, int64_t k, int64_t n,
                  const simd::GemmEpilogue& ep = {}) {
  static Counter& calls =
      MetricsRegistry::Global().GetCounter("gemm.calls");
  static Counter& parallel_calls =
      MetricsRegistry::Global().GetCounter("gemm.parallel_calls");
  static Counter& fused_calls =
      MetricsRegistry::Global().GetCounter("tensor.simd.gemm_fused");
  static Histogram& flops_hist =
      MetricsRegistry::Global().GetHistogram("gemm.flops");
  const int64_t flops = m * k * n;
  calls.Increment();
  flops_hist.Record(static_cast<double>(flops));
  if (ep.bias != nullptr || ep.relu) fused_calls.Increment();
  if (m == 0 || n == 0) return;
  const simd::KernelTable& kt = simd::Kernels();
  // Pack B once into nr-wide zero-padded panels. The scratch comes from the
  // arena, so steady-state training recycles one buffer per shape class.
  const int64_t nr = kt.gemm_nr;
  const int64_t panels = (n + nr - 1) / nr;
  Tensor bpack = Tensor::Uninit(1, panels * nr * k);
  if (k > 0) {
    if (b_transposed) {
      kt.gemm_pack_bt(b, ldb, k, n, bpack.data());
    } else {
      kt.gemm_pack_b(b, ldb, k, n, bpack.data());
    }
  }
  const float* bp = bpack.data();
  if (flops < kGemmParallelFlops || ThreadPool::GlobalThreads() <= 1) {
    kt.gemm(a, as_i, as_p, bp, c, ldc, 0, m, k, n, ep);
    return;
  }
  parallel_calls.Increment();
  ParallelFor(0, m, kGemmRowGrain, [&](int64_t row_begin, int64_t row_end) {
    kt.gemm(a, as_i, as_p, bp, c, ldc, row_begin, row_end, k, n, ep);
  });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  // The panel kernel writes every element of C, so the zero-fill is skipped.
  Tensor out = Tensor::Uninit(m, n);
  GemmDispatch(a.data(), /*as_i=*/k, /*as_p=*/1, b.data(), n,
               /*b_transposed=*/false, out.data(), n, m, k, n);
  return out;
}

Tensor MatMulFused(const Tensor& a, const Tensor& b, const Tensor& bias,
                   bool relu) {
  GRIMP_CHECK_EQ(a.cols(), b.rows());
  GRIMP_CHECK_EQ(bias.size(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  Tensor out = Tensor::Uninit(m, n);
  simd::GemmEpilogue ep;
  ep.bias = bias.data();
  ep.relu = relu;
  GemmDispatch(a.data(), /*as_i=*/k, /*as_p=*/1, b.data(), n,
               /*b_transposed=*/false, out.data(), n, m, k, n, ep);
  return out;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.rows(), b.rows());
  const int64_t k = a.rows();
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  Tensor out = Tensor::Uninit(m, n);
  // Walk A's columns: out rows index A columns (stride 1), p strides a row.
  GemmDispatch(a.data(), /*as_i=*/1, /*as_p=*/m, b.data(), n,
               /*b_transposed=*/false, out.data(), n, m, k, n);
  return out;
}

void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* out) {
  GRIMP_CHECK_EQ(a.rows(), b.rows());
  const int64_t k = a.rows();
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  GRIMP_CHECK(out->rows() == m && out->cols() == n);
  simd::GemmEpilogue ep;
  ep.accumulate = true;
  GemmDispatch(a.data(), /*as_i=*/1, /*as_p=*/m, b.data(), n,
               /*b_transposed=*/false, out->data(), n, m, k, n, ep);
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  Tensor out = Tensor::Uninit(m, n);
  // The pack_bt kernel builds the B^T panels straight from the N x K
  // operand; O(k*n) pack vs O(m*k*n) math, no materialized transpose.
  GemmDispatch(a.data(), /*as_i=*/k, /*as_p=*/1, b.data(), k,
               /*b_transposed=*/true, out.data(), n, m, k, n);
  return out;
}

void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* out) {
  GRIMP_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  GRIMP_CHECK(out->rows() == m && out->cols() == n);
  simd::GemmEpilogue ep;
  ep.accumulate = true;
  GemmDispatch(a.data(), /*as_i=*/k, /*as_p=*/1, b.data(), k,
               /*b_transposed=*/true, out->data(), n, m, k, n, ep);
}

Tensor MatMulNaive(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  Tensor out(m, n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  // ikj loop order for cache-friendly access to b and out.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = ad[i * k + p];
      const float* brow = bd + p * n;
      float* orow = od + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor MatMulTransANaive(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.rows(), b.rows());
  const int64_t k = a.rows();
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  Tensor out(m, n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = ad + p * m;
    const float* brow = bd + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* orow = od + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor MatMulTransBNaive(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  Tensor out(m, n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = ad + i * k;
    float* orow = od + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = bd + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    const float diff = std::fabs(a[i] - b[i]);
    if (!(diff <= atol + rtol * std::fabs(b[i]))) return false;
  }
  return true;
}

}  // namespace grimp
