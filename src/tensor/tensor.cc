#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace grimp {

Tensor Tensor::Full(int64_t rows, int64_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t(1, 1);
  t[0] = value;
  return t;
}

Tensor Tensor::GlorotUniform(int64_t rows, int64_t cols, Rng* rng) {
  Tensor t(rows, cols);
  const float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = rng->UniformReal(-limit, limit);
  }
  return t;
}

Tensor Tensor::RandomNormal(int64_t rows, int64_t cols, float stddev,
                            Rng* rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->NextGaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::FromVector(int64_t rows, int64_t cols,
                          std::vector<float> values) {
  GRIMP_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  Tensor t = Tensor::Uninit(rows, cols);
  if (!values.empty()) {
    std::memcpy(t.data_, values.data(), values.size() * sizeof(float));
  }
  return t;
}

void Tensor::Fill(float value) {
  if (data_ != nullptr) std::fill(data_, data_ + size(), value);
}

void Tensor::Axpy(float alpha, const Tensor& x) {
  GRIMP_CHECK(SameShape(x));
  const float* xs = x.data();
  float* ys = data();
  const int64_t n = size();
  if (ShouldParallelize(n)) {
    ParallelFor(0, n, kParallelThreshold, [=](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) ys[i] += alpha * xs[i];
    });
  } else {
    for (int64_t i = 0; i < n; ++i) ys[i] += alpha * xs[i];
  }
}

float Tensor::SumAbs() const {
  float acc = 0.0f;
  for (int64_t i = 0; i < size(); ++i) acc += std::fabs(data_[i]);
  return acc;
}

float Tensor::Sum() const {
  float acc = 0.0f;
  for (int64_t i = 0; i < size(); ++i) acc += data_[i];
  return acc;
}

float Tensor::MaxAbs() const {
  float acc = 0.0f;
  for (int64_t i = 0; i < size(); ++i) {
    acc = std::max(acc, std::fabs(data_[i]));
  }
  return acc;
}

std::string Tensor::ShapeString() const {
  return "[" + std::to_string(rows_) + " x " + std::to_string(cols_) + "]";
}

std::string Tensor::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << ShapeString() << "\n";
  for (int64_t r = 0; r < std::min<int64_t>(rows_, max_rows); ++r) {
    for (int64_t c = 0; c < std::min<int64_t>(cols_, max_cols); ++c) {
      os << at(r, c) << (c + 1 == cols_ ? "" : " ");
    }
    if (cols_ > max_cols) os << "...";
    os << "\n";
  }
  if (rows_ > max_rows) os << "...\n";
  return os.str();
}

namespace {

// Blocked GEMM micro-kernel geometry. kMR x kNR output tiles are
// accumulated in registers across the whole K extent, so the inner loop
// does kMR*kNR FMAs per B-panel load and touches C only once per tile
// (the naive ikj kernel re-loads and re-stores each C row for every p).
// kMR*kNR must stay small enough that the accumulator tile fits the
// register file even at baseline SSE2 (4x8 floats = 8 xmm registers).
constexpr int64_t kMR = 4;
constexpr int64_t kNR = 8;
// Rows per parallel work chunk. Independent of thread count, so chunk
// boundaries (and therefore results) never depend on the pool size.
constexpr int64_t kGemmRowGrain = 64;
// Below this many multiply-adds, pool dispatch costs more than it saves.
constexpr int64_t kGemmParallelFlops = 1 << 16;

// Computes out rows [i_begin, i_end) of C = A * B, where B is row-major
// K x N with leading dimension ldb, and A is addressed generically as
// a[i * as_i + p * as_p] — (as_i = lda, as_p = 1) walks A's rows,
// (as_i = 1, as_p = lda) walks A's columns (i.e. multiplies by A^T).
// Accumulation over p is in ascending order for every tile shape, so the
// result is bitwise independent of both the tiling and the thread count.
void GemmRowRange(const float* a, int64_t as_i, int64_t as_p, const float* b,
                  int64_t ldb, float* c, int64_t ldc, int64_t i_begin,
                  int64_t i_end, int64_t k, int64_t n) {
  for (int64_t i0 = i_begin; i0 < i_end; i0 += kMR) {
    const int64_t mr = std::min(kMR, i_end - i0);
    const float* atile = a + i0 * as_i;
    for (int64_t j0 = 0; j0 < n; j0 += kNR) {
      const int64_t nr = std::min(kNR, n - j0);
      if (mr == kMR && nr == kNR) {
        // Full tile: constant trip counts so the compiler keeps the
        // accumulators in registers and vectorizes the jj loop.
        float acc[kMR][kNR] = {};
        const float* bptr = b + j0;
        for (int64_t p = 0; p < k; ++p) {
          const float* brow = bptr + p * ldb;
          for (int64_t ii = 0; ii < kMR; ++ii) {
            const float av = atile[ii * as_i + p * as_p];
            for (int64_t jj = 0; jj < kNR; ++jj) {
              acc[ii][jj] += av * brow[jj];
            }
          }
        }
        for (int64_t ii = 0; ii < kMR; ++ii) {
          float* crow = c + (i0 + ii) * ldc + j0;
          for (int64_t jj = 0; jj < kNR; ++jj) crow[jj] = acc[ii][jj];
        }
      } else {
        // Ragged edge tile (m % kMR / n % kNR remainders, 1xK vectors...).
        float acc[kMR][kNR] = {};
        const float* bptr = b + j0;
        for (int64_t p = 0; p < k; ++p) {
          const float* brow = bptr + p * ldb;
          for (int64_t ii = 0; ii < mr; ++ii) {
            const float av = atile[ii * as_i + p * as_p];
            for (int64_t jj = 0; jj < nr; ++jj) {
              acc[ii][jj] += av * brow[jj];
            }
          }
        }
        for (int64_t ii = 0; ii < mr; ++ii) {
          float* crow = c + (i0 + ii) * ldc + j0;
          for (int64_t jj = 0; jj < nr; ++jj) crow[jj] = acc[ii][jj];
        }
      }
    }
  }
}

// Dispatches GemmRowRange over row panels, in parallel when the problem is
// big enough to amortize the pool.
void GemmDispatch(const float* a, int64_t as_i, int64_t as_p, const float* b,
                  int64_t ldb, float* c, int64_t ldc, int64_t m, int64_t k,
                  int64_t n) {
  static Counter& calls =
      MetricsRegistry::Global().GetCounter("gemm.calls");
  static Counter& parallel_calls =
      MetricsRegistry::Global().GetCounter("gemm.parallel_calls");
  static Histogram& flops_hist =
      MetricsRegistry::Global().GetHistogram("gemm.flops");
  const int64_t flops = m * k * n;
  calls.Increment();
  flops_hist.Record(static_cast<double>(flops));
  if (flops < kGemmParallelFlops || ThreadPool::GlobalThreads() <= 1) {
    GemmRowRange(a, as_i, as_p, b, ldb, c, ldc, 0, m, k, n);
    return;
  }
  parallel_calls.Increment();
  ParallelFor(0, m, kGemmRowGrain, [&](int64_t row_begin, int64_t row_end) {
    GemmRowRange(a, as_i, as_p, b, ldb, c, ldc, row_begin, row_end, k, n);
  });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  // The panel kernel writes every element of C, so the zero-fill is skipped.
  Tensor out = Tensor::Uninit(m, n);
  GemmDispatch(a.data(), /*as_i=*/k, /*as_p=*/1, b.data(), n, out.data(), n,
               m, k, n);
  return out;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.rows(), b.rows());
  const int64_t k = a.rows();
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  Tensor out = Tensor::Uninit(m, n);
  // Walk A's columns: out rows index A columns (stride 1), p strides a row.
  GemmDispatch(a.data(), /*as_i=*/1, /*as_p=*/m, b.data(), n, out.data(), n,
               m, k, n);
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  Tensor out = Tensor::Uninit(m, n);
  // Pack B^T once (K x N, contiguous rows) so the panel kernel streams it
  // exactly like plain MatMul; O(k*n) pack vs O(m*k*n) math. The scratch
  // comes from the arena, so repeated backward passes recycle one buffer.
  Tensor bt = Tensor::Uninit(k, n);
  const float* bd = b.data();
  float* btd = bt.data();
  for (int64_t j = 0; j < n; ++j) {
    for (int64_t p = 0; p < k; ++p) btd[p * n + j] = bd[j * k + p];
  }
  GemmDispatch(a.data(), /*as_i=*/k, /*as_p=*/1, btd, n, out.data(), n,
               m, k, n);
  return out;
}

Tensor MatMulNaive(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  Tensor out(m, n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  // ikj loop order for cache-friendly access to b and out.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = ad[i * k + p];
      const float* brow = bd + p * n;
      float* orow = od + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor MatMulTransANaive(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.rows(), b.rows());
  const int64_t k = a.rows();
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  Tensor out(m, n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = ad + p * m;
    const float* brow = bd + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* orow = od + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor MatMulTransBNaive(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  Tensor out(m, n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = ad + i * k;
    float* orow = od + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = bd + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    const float diff = std::fabs(a[i] - b[i]);
    if (!(diff <= atol + rtol * std::fabs(b[i]))) return false;
  }
  return true;
}

}  // namespace grimp
