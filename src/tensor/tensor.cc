#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace grimp {

Tensor Tensor::Full(int64_t rows, int64_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t(1, 1);
  t[0] = value;
  return t;
}

Tensor Tensor::GlorotUniform(int64_t rows, int64_t cols, Rng* rng) {
  Tensor t(rows, cols);
  const float limit = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = rng->UniformReal(-limit, limit);
  }
  return t;
}

Tensor Tensor::RandomNormal(int64_t rows, int64_t cols, float stddev,
                            Rng* rng) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->NextGaussian()) * stddev;
  }
  return t;
}

Tensor Tensor::FromVector(int64_t rows, int64_t cols,
                          std::vector<float> values) {
  GRIMP_CHECK_EQ(static_cast<int64_t>(values.size()), rows * cols);
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = std::move(values);
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::Axpy(float alpha, const Tensor& x) {
  GRIMP_CHECK(SameShape(x));
  const float* xs = x.data();
  float* ys = data();
  const int64_t n = size();
  for (int64_t i = 0; i < n; ++i) ys[i] += alpha * xs[i];
}

float Tensor::SumAbs() const {
  float acc = 0.0f;
  for (float v : data_) acc += std::fabs(v);
  return acc;
}

float Tensor::Sum() const {
  float acc = 0.0f;
  for (float v : data_) acc += v;
  return acc;
}

float Tensor::MaxAbs() const {
  float acc = 0.0f;
  for (float v : data_) acc = std::max(acc, std::fabs(v));
  return acc;
}

std::string Tensor::ShapeString() const {
  return "[" + std::to_string(rows_) + " x " + std::to_string(cols_) + "]";
}

std::string Tensor::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << ShapeString() << "\n";
  for (int64_t r = 0; r < std::min<int64_t>(rows_, max_rows); ++r) {
    for (int64_t c = 0; c < std::min<int64_t>(cols_, max_cols); ++c) {
      os << at(r, c) << (c + 1 == cols_ ? "" : " ");
    }
    if (cols_ > max_cols) os << "...";
    os << "\n";
  }
  if (rows_ > max_rows) os << "...\n";
  return os.str();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  Tensor out(m, n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  // ikj loop order for cache-friendly access to b and out.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = ad[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = bd + p * n;
      float* orow = od + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.rows(), b.rows());
  const int64_t k = a.rows();
  const int64_t m = a.cols();
  const int64_t n = b.cols();
  Tensor out(m, n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = ad + p * m;
    const float* brow = bd + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = od + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  GRIMP_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.rows();
  Tensor out(m, n);
  const float* ad = a.data();
  const float* bd = b.data();
  float* od = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = ad + i * k;
    float* orow = od + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = bd + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
  return out;
}

bool AllClose(const Tensor& a, const Tensor& b, float atol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > atol) return false;
  }
  return true;
}

}  // namespace grimp
