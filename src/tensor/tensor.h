#ifndef GRIMP_TENSOR_TENSOR_H_
#define GRIMP_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace grimp {

// A dense, row-major, rank-2 float tensor (scalars are 1x1, vectors 1xN or
// Nx1). Rank 2 covers everything GRIMP needs: batched training vectors are
// laid out as N x (C*D) with explicit block ops (see tape.h).
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0f) {
    GRIMP_CHECK(rows >= 0 && cols >= 0);
  }

  static Tensor Zeros(int64_t rows, int64_t cols) { return Tensor(rows, cols); }
  static Tensor Full(int64_t rows, int64_t cols, float value);
  static Tensor Scalar(float value);
  // Glorot/Xavier uniform initialization in [-limit, limit],
  // limit = sqrt(6 / (fan_in + fan_out)).
  static Tensor GlorotUniform(int64_t rows, int64_t cols, Rng* rng);
  static Tensor RandomNormal(int64_t rows, int64_t cols, float stddev,
                             Rng* rng);
  static Tensor FromVector(int64_t rows, int64_t cols,
                           std::vector<float> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t r, int64_t c) {
    GRIMP_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    GRIMP_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float& operator[](int64_t i) {
    GRIMP_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }
  float operator[](int64_t i) const {
    GRIMP_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }

  // Scalar access; requires size() == 1.
  float scalar() const {
    GRIMP_CHECK_EQ(size(), 1);
    return data_[0];
  }

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // In-place y += alpha * x (shapes must match).
  void Axpy(float alpha, const Tensor& x);

  // Frobenius-norm helpers.
  float SumAbs() const;
  float Sum() const;
  float MaxAbs() const;

  std::string ShapeString() const;
  // Debug dump (small tensors only).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;
};

// result = a * b (matrix product). Shapes: (M x K) * (K x N) -> (M x N).
// Cache-blocked and multi-threaded (see common/thread_pool.h); accumulation
// order over K is fixed, so results are identical at every thread count.
Tensor MatMul(const Tensor& a, const Tensor& b);
// result = a^T * b. Shapes: (K x M)^T * (K x N) -> (M x N).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
// result = a * b^T. Shapes: (M x K) * (N x K)^T -> (M x N).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

// Single-threaded triple-loop reference kernels. Retained as the ground
// truth the blocked kernels are tested/benchmarked against.
Tensor MatMulNaive(const Tensor& a, const Tensor& b);
Tensor MatMulTransANaive(const Tensor& a, const Tensor& b);
Tensor MatMulTransBNaive(const Tensor& a, const Tensor& b);

// |a - b| <= atol + rtol * |b| elementwise (numpy-style mixed tolerance;
// rtol keeps large-magnitude comparisons meaningful).
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 0.0f);

}  // namespace grimp

#endif  // GRIMP_TENSOR_TENSOR_H_
