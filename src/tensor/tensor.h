#ifndef GRIMP_TENSOR_TENSOR_H_
#define GRIMP_TENSOR_TENSOR_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/arena.h"

namespace grimp {

// A dense, row-major, rank-2 float tensor (scalars are 1x1, vectors 1xN or
// Nx1). Rank 2 covers everything GRIMP needs: batched training vectors are
// laid out as N x (C*D) with explicit block ops (see tape.h).
//
// Storage comes from the process-wide TensorArena: construction acquires a
// pooled buffer, destruction returns it. In steady-state training — where
// every step allocates the same shapes — this makes tensor churn free of
// heap traffic. GRIMP_ARENA=0 routes every buffer through the heap instead
// (see arena.h); values are bit-identical either way.
class Tensor {
 public:
  Tensor() = default;
  Tensor(int64_t rows, int64_t cols) {
    GRIMP_CHECK(rows >= 0 && cols >= 0);
    AcquireBuffer(rows, cols);
    if (data_ != nullptr) std::fill(data_, data_ + size(), 0.0f);
  }

  ~Tensor() { ReleaseBuffer(); }

  Tensor(const Tensor& other) {
    AcquireBuffer(other.rows_, other.cols_);
    if (data_ != nullptr) {
      std::memcpy(data_, other.data_, static_cast<size_t>(size()) *
                                          sizeof(float));
    }
  }
  Tensor& operator=(const Tensor& other) {
    if (this == &other) return *this;
    if (size() != other.size()) {
      ReleaseBuffer();
      AcquireBuffer(other.rows_, other.cols_);
    } else {
      rows_ = other.rows_;
      cols_ = other.cols_;
    }
    if (data_ != nullptr) {
      std::memcpy(data_, other.data_, static_cast<size_t>(size()) *
                                          sizeof(float));
    }
    return *this;
  }
  Tensor(Tensor&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_),
        capacity_(other.capacity_) {
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this == &other) return *this;
    ReleaseBuffer();
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = other.data_;
    capacity_ = other.capacity_;
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_ = nullptr;
    other.capacity_ = 0;
    return *this;
  }

  static Tensor Zeros(int64_t rows, int64_t cols) { return Tensor(rows, cols); }
  // Skips the zero-fill; contents are unspecified. Only for outputs whose
  // every element is written before being read (GEMM outputs, concat, ...).
  static Tensor Uninit(int64_t rows, int64_t cols) {
    GRIMP_CHECK(rows >= 0 && cols >= 0);
    Tensor t;
    t.AcquireBuffer(rows, cols);
    return t;
  }
  static Tensor Full(int64_t rows, int64_t cols, float value);
  static Tensor Scalar(float value);
  // Glorot/Xavier uniform initialization in [-limit, limit],
  // limit = sqrt(6 / (fan_in + fan_out)).
  static Tensor GlorotUniform(int64_t rows, int64_t cols, Rng* rng);
  static Tensor RandomNormal(int64_t rows, int64_t cols, float stddev,
                             Rng* rng);
  static Tensor FromVector(int64_t rows, int64_t cols,
                           std::vector<float> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_; }
  const float* data() const { return data_; }

  float& at(int64_t r, int64_t c) {
    GRIMP_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(int64_t r, int64_t c) const {
    GRIMP_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[r * cols_ + c];
  }
  float& operator[](int64_t i) {
    GRIMP_DCHECK(i >= 0 && i < size());
    return data_[i];
  }
  float operator[](int64_t i) const {
    GRIMP_DCHECK(i >= 0 && i < size());
    return data_[i];
  }

  // Scalar access; requires size() == 1.
  float scalar() const {
    GRIMP_CHECK_EQ(size(), 1);
    return data_[0];
  }

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // In-place y += alpha * x (shapes must match).
  void Axpy(float alpha, const Tensor& x);

  // Frobenius-norm helpers.
  float SumAbs() const;
  float Sum() const;
  float MaxAbs() const;

  std::string ShapeString() const;
  // Debug dump (small tensors only).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  void AcquireBuffer(int64_t rows, int64_t cols) {
    rows_ = rows;
    cols_ = cols;
    const int64_t n = rows * cols;
    if (n > 0) data_ = TensorArena::Global().Acquire(n, &capacity_);
  }
  void ReleaseBuffer() {
    if (data_ != nullptr) {
      TensorArena::Global().Release(data_, capacity_);
      data_ = nullptr;
      capacity_ = 0;
    }
  }

  int64_t rows_ = 0;
  int64_t cols_ = 0;
  float* data_ = nullptr;
  int64_t capacity_ = 0;
};

// result = a * b (matrix product). Shapes: (M x K) * (K x N) -> (M x N).
// Runs on the dispatched SIMD kernel table (see tensor/simd.h): packed-B
// panel micro-kernel, multi-threaded over row ranges (common/thread_pool.h);
// accumulation order over K is fixed, so results are identical at every
// thread count.
Tensor MatMul(const Tensor& a, const Tensor& b);
// result = relu?(a * b + bias), with the bias row-broadcast add (and the
// optional ReLU) fused into the GEMM epilogue while the C tile is still in
// registers. bias must have b.cols() elements.
Tensor MatMulFused(const Tensor& a, const Tensor& b, const Tensor& bias,
                   bool relu);
// result = a^T * b. Shapes: (K x M)^T * (K x N) -> (M x N).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
// *out += a^T * b (accumulating epilogue; serves gradient accumulation
// without a temporary + Axpy round-trip). out must already be M x N.
void MatMulTransAAcc(const Tensor& a, const Tensor& b, Tensor* out);
// result = a * b^T. Shapes: (M x K) * (N x K)^T -> (M x N).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
// *out += a * b^T.
void MatMulTransBAcc(const Tensor& a, const Tensor& b, Tensor* out);

// Single-threaded triple-loop reference kernels. Retained as the ground
// truth the blocked kernels are tested/benchmarked against.
Tensor MatMulNaive(const Tensor& a, const Tensor& b);
Tensor MatMulTransANaive(const Tensor& a, const Tensor& b);
Tensor MatMulTransBNaive(const Tensor& a, const Tensor& b);

// |a - b| <= atol + rtol * |b| elementwise (numpy-style mixed tolerance;
// rtol keeps large-magnitude comparisons meaningful).
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 0.0f);

}  // namespace grimp

#endif  // GRIMP_TENSOR_TENSOR_H_
