#include "tensor/arena.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/engine.h"
#include "core/grimp.h"
#include "table/corruption.h"
#include "tensor/tensor.h"

namespace grimp {
namespace {

// Restores the arena's enabled flag on scope exit so a failing assertion in
// one test cannot leak a disabled arena into the rest of the suite.
class ArenaEnabledGuard {
 public:
  explicit ArenaEnabledGuard(bool enabled)
      : prev_(TensorArena::Global().enabled()) {
    TensorArena::Global().SetEnabled(enabled);
  }
  ~ArenaEnabledGuard() { TensorArena::Global().SetEnabled(prev_); }

 private:
  bool prev_;
};

// Same fixture as trainer_test: b and num are deterministic functions of a.
Table StructuredTable(int64_t rows) {
  Schema schema({{"a", AttrType::kCategorical},
                 {"b", AttrType::kCategorical},
                 {"num", AttrType::kNumerical}});
  Table t(schema);
  for (int64_t i = 0; i < rows; ++i) {
    const int a = static_cast<int>(i % 4);
    EXPECT_TRUE(t.AppendRow({"a" + std::to_string(a),
                             "b" + std::to_string(a % 2),
                             std::to_string(10 * a)})
                    .ok());
  }
  return t;
}

GrimpOptions SmallOptions() {
  GrimpOptions options;
  options.dim = 16;
  options.shared_hidden = 32;
  options.max_epochs = 10;
  options.seed = 21;
  return options;
}

void ExpectTablesIdentical(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_cols(), b.num_cols());
  for (int c = 0; c < a.num_cols(); ++c) {
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.column(c).StringAt(r), b.column(c).StringAt(r))
          << "cell (" << r << ", " << c << ")";
    }
  }
}

TEST(ArenaTest, AcquireRoundsUpToBucketAndRecycles) {
  ArenaEnabledGuard guard(true);
  TensorArena& arena = TensorArena::Global();
  const int64_t in_use0 = arena.bytes_in_use();
  const int64_t hits0 = arena.pool_hits();

  int64_t cap = 0;
  float* p = arena.Acquire(100, &cap);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(cap, 128);  // rounded up to the next pow2 bucket
  EXPECT_EQ(arena.bytes_in_use() - in_use0,
            static_cast<int64_t>(128 * sizeof(float)));
  arena.Release(p, cap);
  EXPECT_EQ(arena.bytes_in_use(), in_use0);

  // Same bucket again: must come from the free list, not the heap.
  int64_t cap2 = 0;
  float* p2 = arena.Acquire(65, &cap2);
  EXPECT_EQ(cap2, 128);
  EXPECT_EQ(p2, p);
  EXPECT_EQ(arena.pool_hits() - hits0, 1);
  arena.Release(p2, cap2);
}

TEST(ArenaTest, TinyRequestsShareTheMinimumBucket) {
  ArenaEnabledGuard guard(true);
  TensorArena& arena = TensorArena::Global();
  int64_t cap = 0;
  float* p = arena.Acquire(1, &cap);
  EXPECT_EQ(cap, TensorArena::kMinBucketFloats);
  arena.Release(p, cap);
  int64_t cap2 = 0;
  float* p2 = arena.Acquire(TensorArena::kMinBucketFloats, &cap2);
  EXPECT_EQ(cap2, TensorArena::kMinBucketFloats);
  EXPECT_EQ(p2, p);
  arena.Release(p2, cap2);
}

TEST(ArenaTest, DisabledModeAllocatesExactSizes) {
  ArenaEnabledGuard guard(false);
  TensorArena& arena = TensorArena::Global();
  // Exact-size allocations let ASan catch reads past Tensor::size() that a
  // rounded-up pooled buffer would silently absorb.
  int64_t cap = 0;
  float* p = arena.Acquire(100, &cap);
  EXPECT_EQ(cap, 100);
  const int64_t pooled = arena.pooled_bytes();
  arena.Release(p, cap);
  EXPECT_EQ(arena.pooled_bytes(), pooled);  // freed, not pooled
}

TEST(ArenaTest, TrimReleasesIdleBuffersOnly) {
  ArenaEnabledGuard guard(true);
  TensorArena& arena = TensorArena::Global();
  int64_t cap_live = 0;
  float* live = arena.Acquire(200, &cap_live);
  int64_t cap_idle = 0;
  float* idle = arena.Acquire(200, &cap_idle);
  arena.Release(idle, cap_idle);
  EXPECT_GE(arena.pooled_bytes(), static_cast<int64_t>(cap_idle * sizeof(float)));

  arena.Trim();
  EXPECT_EQ(arena.pooled_bytes(), 0);
  // The live buffer is untouched; writing through it must stay valid.
  live[0] = 1.0f;
  live[cap_live - 1] = 2.0f;
  EXPECT_EQ(live[0], 1.0f);
  arena.Release(live, cap_live);
}

TEST(ArenaTest, TensorsRoundTripThroughThePool) {
  ArenaEnabledGuard guard(true);
  TensorArena& arena = TensorArena::Global();
  { Tensor warm(8, 16); }  // seeds the bucket
  const int64_t hits0 = arena.pool_hits();
  const int64_t reserved0 = arena.reserved_bytes();
  for (int i = 0; i < 10; ++i) {
    Tensor t(8, 16);
    t.at(0, 0) = static_cast<float>(i);
  }
  EXPECT_EQ(arena.pool_hits() - hits0, 10);
  EXPECT_EQ(arena.reserved_bytes(), reserved0);  // no new heap memory
}

// The tentpole's core claim: after a few warmup epochs every buffer a
// training step needs is already pooled, so further epochs neither grow the
// arena's heap footprint nor move its high-water mark.
TEST(ArenaTest, SteadyStateTrainingDoesNotGrowArena) {
  ArenaEnabledGuard guard(true);
  Table clean = StructuredTable(100);
  const CorruptedTable corrupted = InjectMcar(clean, 0.3, 1);

  GrimpOptions options = SmallOptions();
  options.max_epochs = 8;
  options.validation_fraction = 0.0;  // disable early stopping: 8 epochs run
  std::vector<int64_t> reserved;
  std::vector<int64_t> high_water;
  options.callbacks.on_epoch_end = [&](const EpochStats&) {
    reserved.push_back(TensorArena::Global().reserved_bytes());
    high_water.push_back(TensorArena::Global().high_water_bytes());
    return true;
  };
  GrimpImputer grimp(options);
  ASSERT_TRUE(grimp.Impute(corrupted.dirty).ok());

  ASSERT_EQ(reserved.size(), 8u);
  constexpr size_t kWarmup = 3;
  for (size_t i = kWarmup; i < reserved.size(); ++i) {
    EXPECT_EQ(reserved[i], reserved[kWarmup - 1]) << "epoch " << i;
    EXPECT_EQ(high_water[i], high_water[kWarmup - 1]) << "epoch " << i;
  }
}

// Sampled mode redraws receptive fields every batch, so buffer sizes jitter;
// the pow2 buckets must still absorb nearly every request after warmup.
TEST(ArenaTest, SampledTrainingHitsThePoolAfterWarmup) {
  ArenaEnabledGuard guard(true);
  Table clean = StructuredTable(100);
  const CorruptedTable corrupted = InjectMcar(clean, 0.3, 1);

  GrimpOptions options = SmallOptions();
  options.max_epochs = 10;
  options.train.mode = TrainMode::kSampled;
  options.train.batch_size = 32;
  options.train.fanouts = {4, 4};
  TensorArena& arena = TensorArena::Global();
  int64_t hits0 = 0;
  int64_t misses0 = 0;
  int epoch = 0;
  options.callbacks.on_epoch_end = [&](const EpochStats&) {
    if (++epoch == 3) {  // snapshot after warmup
      hits0 = arena.pool_hits();
      misses0 = arena.pool_misses();
    }
    return true;
  };
  GrimpImputer grimp(options);
  ASSERT_TRUE(grimp.Impute(corrupted.dirty).ok());

  const int64_t hits = arena.pool_hits() - hits0;
  const int64_t misses = arena.pool_misses() - misses0;
  ASSERT_GT(hits, 0);
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(hits + misses),
            0.99)
      << "hits=" << hits << " misses=" << misses;
}

// The arena must never change what gets computed: training losses and the
// imputed table are bit-identical with the pool on and off, in both training
// modes.
TEST(ArenaTest, ArenaOnOffBitIdenticalImputation) {
  Table clean = StructuredTable(80);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 4);

  for (const bool sampled : {false, true}) {
    auto run = [&](bool arena_on, std::vector<double>* losses) {
      ArenaEnabledGuard guard(arena_on);
      GrimpOptions options = SmallOptions();
      options.max_epochs = 8;
      if (sampled) {
        options.train.mode = TrainMode::kSampled;
        options.train.batch_size = 32;
        options.train.fanouts = {4, 4};
      }
      options.callbacks.on_epoch_end = [losses](const EpochStats& stats) {
        losses->push_back(stats.train_loss);
        return true;
      };
      GrimpImputer grimp(options);
      auto imputed = grimp.Impute(corrupted.dirty);
      EXPECT_TRUE(imputed.ok());
      return *imputed;
    };
    std::vector<double> losses_on, losses_off;
    const Table on = run(true, &losses_on);
    const Table off = run(false, &losses_off);
    ASSERT_FALSE(losses_on.empty());
    ASSERT_EQ(losses_on.size(), losses_off.size());
    for (size_t i = 0; i < losses_on.size(); ++i) {
      EXPECT_EQ(losses_on[i], losses_off[i])
          << (sampled ? "sampled" : "full") << " epoch " << i;
    }
    ExpectTablesIdentical(on, off);
  }
}

// Serving path: a fitted engine's Transform output must not depend on the
// arena either.
TEST(ArenaTest, ArenaOnOffBitIdenticalTransform) {
  Table clean = StructuredTable(80);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 6);
  GrimpOptions options = SmallOptions();
  GrimpEngine engine(options);
  ASSERT_TRUE(engine.Fit(corrupted.dirty).ok());

  Table request(clean.schema());
  ASSERT_TRUE(request.AppendRow({"a2", "", ""}).ok());
  Table on(clean.schema());
  Table off(clean.schema());
  {
    ArenaEnabledGuard guard(true);
    auto result = engine.Transform(request);
    ASSERT_TRUE(result.ok());
    on = *result;
  }
  {
    ArenaEnabledGuard guard(false);
    auto result = engine.Transform(request);
    ASSERT_TRUE(result.ok());
    off = *result;
  }
  ExpectTablesIdentical(on, off);
}

// Trainer::Run publishes the arena gauges; a training run must leave real
// values behind in the registry.
TEST(ArenaTest, TrainingPublishesArenaGauges) {
  ArenaEnabledGuard guard(true);
  Table clean = StructuredTable(60);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 2);
  GrimpOptions options = SmallOptions();
  options.max_epochs = 4;
  GrimpImputer grimp(options);
  ASSERT_TRUE(grimp.Impute(corrupted.dirty).ok());

  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("tensor.arena.enabled").value(), 1.0);
  EXPECT_GT(registry.GetGauge("tensor.arena.high_water_bytes").value(), 0.0);
  EXPECT_GT(registry.GetGauge("tensor.arena.reserved_bytes").value(), 0.0);
  EXPECT_GT(registry.GetGauge("tensor.arena.pool_hit_rate").value(), 0.5);
}

}  // namespace
}  // namespace grimp
