#include <gtest/gtest.h>

#include "baselines/aimnet.h"
#include "baselines/datawig.h"
#include "baselines/fd_repair.h"
#include "baselines/knn.h"
#include "baselines/mean_mode.h"
#include "baselines/missforest.h"
#include "baselines/turl_proxy.h"
#include "baselines/zoo.h"
#include "eval/metrics.h"
#include "eval/runner.h"

namespace grimp {
namespace {

// Deterministic structure: b = f(a), num = g(a); any context-aware
// imputer should recover masked cells almost perfectly.
Table StructuredTable(int64_t rows) {
  Schema schema({{"a", AttrType::kCategorical},
                 {"b", AttrType::kCategorical},
                 {"num", AttrType::kNumerical}});
  Table t(schema);
  for (int64_t i = 0; i < rows; ++i) {
    const int a = static_cast<int>(i % 4);
    EXPECT_TRUE(t.AppendRow({"a" + std::to_string(a),
                             "b" + std::to_string(a % 2),
                             std::to_string(10 * a)})
                    .ok());
  }
  return t;
}

double CategoricalAccuracy(ImputationAlgorithm* algo, const Table& clean,
                           double missing_fraction, uint64_t seed) {
  const CorruptedTable corrupted = InjectMcar(clean, missing_fraction, seed);
  const RunResult rr =
      RunAlgorithm(clean, corrupted, algo);
  EXPECT_TRUE(rr.status.ok()) << rr.status.ToString();
  return rr.score.Accuracy();
}

TEST(MeanModeTest, FillsEveryMissingCellWithModeAndMean) {
  Table clean = StructuredTable(40);
  CorruptedTable corrupted = InjectMcar(clean, 0.3, 1);
  MeanModeImputer imputer;
  auto imputed = imputer.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
  // Numeric cells are the column mean of present cells.
  double mean = 0, std = 1;
  corrupted.dirty.column(2).NumericMoments(&mean, &std);
  for (const CellRef& cell : corrupted.missing_cells) {
    if (cell.col == 2) {
      EXPECT_NEAR(imputed->column(2).NumAt(cell.row), mean, 1e-9);
    }
  }
}

TEST(KnnTest, RecoversStructuredCells) {
  Table clean = StructuredTable(120);
  KnnImputer knn(5);
  EXPECT_GT(CategoricalAccuracy(&knn, clean, 0.2, 2), 0.9);
}

TEST(KnnTest, RejectsBadK) {
  KnnImputer knn(0);
  Table clean = StructuredTable(10);
  EXPECT_FALSE(knn.Impute(clean).ok());
}

TEST(DecisionTreeTest, LearnsCategoricalRule) {
  // y = (f0 == 2), categorical feature.
  FeatureMatrix x = FeatureMatrix::Create(200, 1);
  x.feature_categorical[0] = true;
  std::vector<int32_t> y(200);
  Rng rng(3);
  for (int64_t i = 0; i < 200; ++i) {
    const double f = static_cast<double>(rng.Uniform(4));
    x.Set(i, 0, f);
    y[static_cast<size_t>(i)] = f == 2.0 ? 1 : 0;
  }
  std::vector<int64_t> rows(200);
  for (int64_t i = 0; i < 200; ++i) rows[static_cast<size_t>(i)] = i;
  DecisionTree tree;
  tree.FitClassification(x, y, 2, rows, {0}, TreeOptions{}, &rng);
  int correct = 0;
  for (int64_t i = 0; i < 200; ++i) {
    correct += static_cast<int32_t>(tree.Predict(x, i)) ==
               y[static_cast<size_t>(i)];
  }
  EXPECT_GT(correct, 195);
}

TEST(DecisionTreeTest, LearnsNumericThresholdRegression) {
  FeatureMatrix x = FeatureMatrix::Create(300, 1);
  std::vector<double> y(300);
  Rng rng(4);
  for (int64_t i = 0; i < 300; ++i) {
    const double f = rng.NextDouble();
    x.Set(i, 0, f);
    y[static_cast<size_t>(i)] = f < 0.5 ? 1.0 : 5.0;
  }
  std::vector<int64_t> rows(300);
  for (int64_t i = 0; i < 300; ++i) rows[static_cast<size_t>(i)] = i;
  DecisionTree tree;
  tree.FitRegression(x, y, rows, {0}, TreeOptions{}, &rng);
  double err = 0;
  for (int64_t i = 0; i < 300; ++i) {
    err += std::fabs(tree.Predict(x, i) - y[static_cast<size_t>(i)]);
  }
  EXPECT_LT(err / 300.0, 0.2);
}

TEST(RandomForestTest, MajorityVoteBeatsSingleNoisyTree) {
  FeatureMatrix x = FeatureMatrix::Create(400, 3);
  std::vector<int32_t> y(400);
  Rng rng(5);
  for (int64_t i = 0; i < 400; ++i) {
    for (int f = 0; f < 3; ++f) x.Set(i, f, rng.NextDouble());
    y[static_cast<size_t>(i)] =
        (x.At(i, 0) + x.At(i, 1) > 1.0) ? 1 : 0;
  }
  std::vector<int64_t> rows(400);
  for (int64_t i = 0; i < 400; ++i) rows[static_cast<size_t>(i)] = i;
  RandomForest forest;
  ForestOptions options;
  options.num_trees = 15;
  forest.FitClassification(x, y, 2, rows, {0, 1, 2}, options, &rng);
  EXPECT_EQ(forest.num_trees(), 15);
  int correct = 0;
  for (int64_t i = 0; i < 400; ++i) {
    correct += forest.PredictClass(x, i) == y[static_cast<size_t>(i)];
  }
  EXPECT_GT(correct / 400.0, 0.9);
}

TEST(MissForestTest, FillsAllCellsAndRecoversStructure) {
  Table clean = StructuredTable(150);
  CorruptedTable corrupted = InjectMcar(clean, 0.25, 6);
  MissForestImputer misf;
  auto imputed = misf.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
  EXPECT_GT(misf.iterations_run(), 0);
  const ImputationScore score = ScoreImputation(*imputed, corrupted, clean);
  EXPECT_GT(score.Accuracy(), 0.85);
  EXPECT_LT(score.Rmse(), 9.0);  // residual error from multi-missing rows
}

TEST(FunForestTest, FdBudgetImprovesOnFdData) {
  Table clean = StructuredTable(150);
  std::vector<FunctionalDependency> fds{{{0}, 1}};  // a -> b holds
  const CorruptedTable corrupted = InjectMcar(clean, 0.3, 7);
  MissForestOptions funf_opts;
  funf_opts.fds = fds;
  funf_opts.fd_tree_budget = 0.5;
  MissForestImputer funf(funf_opts);
  EXPECT_EQ(funf.name(), "FUNF");
  auto imputed = funf.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  const ImputationScore score = ScoreImputation(*imputed, corrupted, clean);
  EXPECT_GT(score.Accuracy(), 0.75);
}

TEST(FdRepairTest, ExactOnCoveredCellsSilentOnOthers) {
  Table clean = StructuredTable(100);
  CorruptedTable corrupted = InjectMcar(clean, 0.3, 8);
  FdRepairImputer repair({{{0}, 1}});  // only b is covered
  auto imputed = repair.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  for (const CellRef& cell : corrupted.missing_cells) {
    if (cell.col == 1 && !corrupted.dirty.IsMissing(cell.row, 0)) {
      // Covered by the FD with present premise: must be exact.
      EXPECT_EQ(imputed->column(1).StringAt(cell.row),
                clean.column(1).StringAt(cell.row));
    }
    if (cell.col == 0 || cell.col == 2) {
      // Not covered: left missing (poor recall by design).
      EXPECT_TRUE(imputed->IsMissing(cell.row, cell.col));
    }
  }
}

TEST(AimNetTest, BeatsModeOnStructuredData) {
  Table clean = StructuredTable(150);
  AimNetOptions options;
  options.epochs = 80;
  AimNetImputer holo(options);
  MeanModeImputer mode;
  const double holo_acc = CategoricalAccuracy(&holo, clean, 0.2, 9);
  const double mode_acc = CategoricalAccuracy(&mode, clean, 0.2, 9);
  EXPECT_GT(holo_acc, mode_acc);
  EXPECT_GT(holo_acc, 0.8);
}

TEST(DataWigTest, FillsAllAndLearnsStructure) {
  Table clean = StructuredTable(150);
  DataWigImputer dwig;
  const CorruptedTable corrupted = InjectMcar(clean, 0.2, 10);
  auto imputed = dwig.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
  const ImputationScore score = ScoreImputation(*imputed, corrupted, clean);
  EXPECT_GT(score.Accuracy(), 0.7);
}

TEST(TurlProxyTest, StrongOnCategoricalWeakOnNumeric) {
  Table clean = StructuredTable(200);
  TurlProxyImputer turl;
  const CorruptedTable corrupted = InjectMcar(clean, 0.2, 11);
  Table imputed;
  const RunResult rr = RunAlgorithm(clean, corrupted, &turl, &imputed);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_GT(rr.score.Accuracy(), 0.7);
  // Numeric cells are the column mean: nonzero RMSE on this data.
  if (rr.score.numerical_cells > 0) {
    EXPECT_GT(rr.score.Rmse(), 0.0);
  }
}

TEST(ZooTest, ComparisonSuiteHasSevenPaperBaselines) {
  ZooOptions options;
  options.grimp_epochs = 2;  // construction only
  const auto suite = MakeComparisonSuite(options);
  ASSERT_EQ(suite.size(), 7u);
  std::vector<std::string> names;
  for (const auto& algo : suite) names.push_back(algo->name());
  EXPECT_EQ(names[0], "GRIMP-FT");
  EXPECT_EQ(names[1], "GRIMP-E");
  EXPECT_EQ(names[2], "HOLO");
  EXPECT_EQ(names[3], "TURL");
  EXPECT_EQ(names[4], "MISF");
  EXPECT_EQ(names[5], "DWIG");
  EXPECT_EQ(names[6], "EmbDI-MC");
}

}  // namespace
}  // namespace grimp
