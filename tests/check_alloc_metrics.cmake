# CTest helper: smoke-run the allocation benchmark (full, sampled and serve
# workloads, arena off/on) with GRIMP_METRICS_JSON set, then assert the
# dumped registry carries the tensor.arena.* gauges and that the bench's
# artifact records bit-identical arena-on/off results. Invoked as
#   cmake -DALLOC_BIN=<exe> -DWORK_DIR=<dir> -P check_alloc_metrics.cmake

if(NOT DEFINED ALLOC_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DALLOC_BIN=<exe> -DWORK_DIR=<dir> -P ...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(metrics "${WORK_DIR}/alloc_smoke_metrics.json")
file(REMOVE "${metrics}")

# Smoke size: far below the bench's own 10000-row gate threshold, but large
# enough for several minibatches per task and several dirty rows to serve.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "GRIMP_METRICS_JSON=${metrics}"
          "${ALLOC_BIN}" --rows=300 --epochs=3
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE alloc_result
  OUTPUT_VARIABLE alloc_output
  ERROR_VARIABLE alloc_errors)
if(NOT alloc_result EQUAL 0)
  message(FATAL_ERROR
          "bench_alloc failed (${alloc_result}):\n${alloc_output}\n"
          "${alloc_errors}")
endif()

if(NOT EXISTS "${metrics}")
  message(FATAL_ERROR "GRIMP_METRICS_JSON sink ${metrics} was not written")
endif()
file(READ "${metrics}" metrics_json)

# The bench re-enables the arena and publishes its gauges before exit, so
# the dump must show an enabled arena that actually pooled memory.
string(JSON arena_enabled GET "${metrics_json}" gauges tensor.arena.enabled)
if(NOT arena_enabled EQUAL 1)
  message(FATAL_ERROR "tensor.arena.enabled gauge is ${arena_enabled}")
endif()
string(JSON high_water GET "${metrics_json}" gauges
       tensor.arena.high_water_bytes)
if(high_water LESS 1)
  message(FATAL_ERROR "tensor.arena.high_water_bytes is ${high_water}")
endif()
string(JSON pool_hits GET "${metrics_json}" gauges tensor.arena.pool_hits)
if(pool_hits LESS 1)
  message(FATAL_ERROR "tensor.arena.pool_hits is ${pool_hits}")
endif()
string(JSON hit_rate GET "${metrics_json}" gauges tensor.arena.pool_hit_rate)
if(hit_rate LESS_EQUAL 0)
  message(FATAL_ERROR "tensor.arena.pool_hit_rate is ${hit_rate}")
endif()

# The artifact must cover all six workload/arena combinations and certify
# that recycling never changed a result.
if(NOT EXISTS "${WORK_DIR}/BENCH_alloc.json")
  message(FATAL_ERROR "BENCH_alloc.json was not written")
endif()
file(READ "${WORK_DIR}/BENCH_alloc.json" bench_json)
string(JSON num_configs LENGTH "${bench_json}" configs)
if(NOT num_configs EQUAL 6)
  message(FATAL_ERROR "BENCH_alloc.json has ${num_configs} configs, want 6")
endif()
string(JSON identical GET "${bench_json}" bit_identical)
if(NOT identical STREQUAL "ON")
  message(FATAL_ERROR "BENCH_alloc.json bit_identical is ${identical}")
endif()

message(STATUS "alloc metrics ok: pool_hits=${pool_hits}, "
        "hit_rate=${hit_rate}, configs=${num_configs}")
