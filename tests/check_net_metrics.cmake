# CTest helper: run the loopback-TCP socket smoke (tests/net_smoke.cc) with
# GRIMP_METRICS_JSON set, then assert the dumped registry shows a healthy
# socket front end: every connection accounted for, one response per
# request, traffic counted in both directions, and the hot-row cache
# actually absorbing the repeated rows. Invoked as
#   cmake -DSMOKE_BIN=<exe> -DWORK_DIR=<dir> -P check_net_metrics.cmake

if(NOT DEFINED SMOKE_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DSMOKE_BIN=<exe> -DWORK_DIR=<dir> -P ...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(metrics "${WORK_DIR}/net_smoke_metrics.json")
file(REMOVE "${metrics}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "GRIMP_METRICS_JSON=${metrics}"
          "${SMOKE_BIN}"
  RESULT_VARIABLE smoke_result
  OUTPUT_VARIABLE smoke_output
  ERROR_VARIABLE smoke_errors)
if(NOT smoke_result EQUAL 0)
  message(FATAL_ERROR
          "net_smoke failed (${smoke_result}):\n${smoke_output}\n${smoke_errors}")
endif()

if(NOT EXISTS "${metrics}")
  message(FATAL_ERROR "GRIMP_METRICS_JSON sink ${metrics} was not written")
endif()
file(READ "${metrics}" metrics_json)

# 8 clients x 8 rounds x 3 lines (hot row, cold row, malformed frame).
math(EXPR want_requests "8 * 8 * 3")

string(JSON accepted GET "${metrics_json}" counters serve.net.accepted)
string(JSON closed GET "${metrics_json}" counters serve.net.closed)
string(JSON requests GET "${metrics_json}" counters serve.net.requests)
string(JSON responses GET "${metrics_json}" counters serve.net.responses)
string(JSON bytes_in GET "${metrics_json}" counters serve.net.bytes_in)
string(JSON bytes_out GET "${metrics_json}" counters serve.net.bytes_out)
string(JSON cache_hits GET "${metrics_json}" counters serve.cache.hits)
string(JSON cache_misses GET "${metrics_json}" counters serve.cache.misses)
string(JSON active GET "${metrics_json}" gauges serve.net.active_connections)

if(NOT accepted EQUAL 8)
  message(FATAL_ERROR "serve.net.accepted is ${accepted}, expected 8")
endif()
if(NOT closed EQUAL accepted)
  message(FATAL_ERROR
          "serve.net.closed is ${closed}, accepted ${accepted}: leaked conns")
endif()
if(NOT active EQUAL 0)
  message(FATAL_ERROR "serve.net.active_connections ended at ${active}")
endif()
if(NOT requests EQUAL want_requests)
  message(FATAL_ERROR
          "serve.net.requests is ${requests}, expected ${want_requests}")
endif()
if(NOT responses EQUAL requests)
  message(FATAL_ERROR
          "serve.net.responses is ${responses}, requests ${requests}")
endif()
if(bytes_in LESS 1 OR bytes_out LESS 1)
  message(FATAL_ERROR "byte counters empty: in=${bytes_in} out=${bytes_out}")
endif()
# The shared hot row is requested 64 times; all but the first lookup (and
# any racing first lookups at startup) must be absorbed by the cache.
if(cache_hits LESS 50)
  message(FATAL_ERROR "serve.cache.hits is ${cache_hits}, expected >= 50")
endif()
if(cache_misses LESS 1)
  message(FATAL_ERROR "serve.cache.misses is ${cache_misses}")
endif()

message(STATUS "net metrics ok: accepted=${accepted} requests=${requests} "
        "responses=${responses} cache_hits=${cache_hits}")
