# CTest helper: exercise grimp_serve end to end (fit a model on a toy CSV,
# serve NDJSON requests over stdin) with GRIMP_METRICS_JSON set, then assert
# the dumped registry contains the serve.* observability keys every request
# must touch. Invoked as
#   cmake -DSERVE_BIN=<exe> -DWORK_DIR=<dir> -P check_serve_metrics.cmake

if(NOT DEFINED SERVE_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DSERVE_BIN=<exe> -DWORK_DIR=<dir> -P ...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(csv "${WORK_DIR}/serve_smoke.csv")
set(model "${WORK_DIR}/serve_smoke_model.bin")
set(requests "${WORK_DIR}/serve_smoke_requests.ndjson")
set(metrics "${WORK_DIR}/serve_smoke_metrics.json")
file(REMOVE "${metrics}")

# Tiny perfectly-correlated table: color determines size and price.
file(WRITE "${csv}" "color,size,price\n")
foreach(i RANGE 5)
  file(APPEND "${csv}" "red,small,1\nblue,large,9\n")
endforeach()

execute_process(
  COMMAND "${SERVE_BIN}" fit --csv "${csv}" --out "${model}"
          --epochs 10 --dim 8 --quiet
  RESULT_VARIABLE fit_result
  ERROR_VARIABLE fit_errors)
if(NOT fit_result EQUAL 0)
  message(FATAL_ERROR "grimp_serve fit failed (${fit_result}):\n${fit_errors}")
endif()

file(WRITE "${requests}"
  "{\"model\":\"demo\",\"color\":\"red\",\"size\":null,\"price\":\"1\"}\n"
  "{\"color\":\"blue\",\"size\":null,\"price\":\"9\"}\n"
  "{\"color\":null,\"size\":\"small\",\"price\":\"1\"}\n"
  "{\"bogus\":\"x\"}\n")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "GRIMP_METRICS_JSON=${metrics}"
          "${SERVE_BIN}" serve --model "demo=${model}" --max-batch 4
  INPUT_FILE "${requests}"
  RESULT_VARIABLE serve_result
  OUTPUT_VARIABLE serve_output
  ERROR_VARIABLE serve_errors)
if(NOT serve_result EQUAL 0)
  message(FATAL_ERROR
          "grimp_serve serve failed (${serve_result}):\n${serve_errors}")
endif()

# Three imputations and one typed rejection, one response line each.
string(REGEX MATCHALL "\"ok\":true" ok_lines "${serve_output}")
list(LENGTH ok_lines num_ok)
if(NOT num_ok EQUAL 3)
  message(FATAL_ERROR "expected 3 ok responses, got ${num_ok}:\n${serve_output}")
endif()
if(NOT serve_output MATCHES "\"ok\":false")
  message(FATAL_ERROR "bad request was not rejected:\n${serve_output}")
endif()
if(NOT serve_output MATCHES "unknown column 'bogus'")
  message(FATAL_ERROR "rejection lost its message:\n${serve_output}")
endif()

if(NOT EXISTS "${metrics}")
  message(FATAL_ERROR "GRIMP_METRICS_JSON sink ${metrics} was not written")
endif()
file(READ "${metrics}" metrics_json)

# Every serving stage must have reported: admission span, model-load span,
# end-to-end latency span, batch-size histogram, per-model + outcome
# counters, and the queue-depth gauge.
foreach(span serve.enqueue serve.e2e_seconds serve.model_load)
  string(JSON span_count GET "${metrics_json}" spans "${span}" count)
  if(span_count LESS 1)
    message(FATAL_ERROR "span ${span} has count ${span_count}")
  endif()
endforeach()

string(JSON batch_count GET "${metrics_json}" histograms serve.batch_size
       count)
string(JSON completed GET "${metrics_json}" counters serve.completed)
string(JSON demo_requests GET "${metrics_json}" counters serve.requests.demo)
if(NOT completed EQUAL 3)
  message(FATAL_ERROR "serve.completed is ${completed}, expected 3")
endif()
if(demo_requests LESS 3)
  message(FATAL_ERROR "serve.requests.demo is ${demo_requests}")
endif()
if(batch_count LESS 1)
  message(FATAL_ERROR "serve.batch_size histogram is empty")
endif()
string(JSON queue_depth GET "${metrics_json}" gauges serve.queue_depth)
if(queue_depth LESS 0)
  message(FATAL_ERROR "serve.queue_depth gauge is ${queue_depth}")
endif()
string(JSON models_loaded GET "${metrics_json}" gauges serve.models_loaded)
if(NOT models_loaded EQUAL 1)
  message(FATAL_ERROR "serve.models_loaded gauge is ${models_loaded}")
endif()

message(STATUS "serve metrics ok: completed=${completed}, "
        "batches(hist count)=${batch_count}, requests.demo=${demo_requests}")
