# CTest helper: run bench_stream at smoke size with GRIMP_METRICS_JSON set,
# then assert (a) BENCH_stream.json reports bit-identical windows between the
# delta-maintained graph and the batch rebuild, and (b) the dumped metrics
# registry contains the stream.* observability keys every ingest/impute/
# fine-tune cycle must touch. The 5x freshness gate is a full-scale property,
# so the smoke run lowers it to 1.0 and relies on the identity check instead.
# Invoked as
#   cmake -DSMOKE_BIN=<exe> -DWORK_DIR=<dir> -P check_stream_metrics.cmake

if(NOT DEFINED SMOKE_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DSMOKE_BIN=<exe> -DWORK_DIR=<dir> -P ...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(metrics "${WORK_DIR}/stream_smoke_metrics.json")
set(bench_json "${WORK_DIR}/BENCH_stream.json")
file(REMOVE "${metrics}" "${bench_json}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "GRIMP_METRICS_JSON=${metrics}"
          "${SMOKE_BIN}" --rows=900 --batch=64 --window=64 --epochs=4
          --min-speedup=1.0
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE bench_result
  OUTPUT_VARIABLE bench_output
  ERROR_VARIABLE bench_errors)
if(NOT bench_result EQUAL 0)
  message(FATAL_ERROR
          "bench_stream failed (${bench_result}):\n"
          "${bench_output}\n${bench_errors}")
endif()

if(NOT EXISTS "${bench_json}")
  message(FATAL_ERROR "bench_stream did not write ${bench_json}")
endif()
file(READ "${bench_json}" bench_report)

# The load-bearing invariant: every streaming window is bit-identical to a
# from-scratch rebuild over the same table and segment list.
string(JSON identical GET "${bench_report}" windows_identical)
if(NOT identical STREQUAL "ON")
  message(FATAL_ERROR
          "delta-maintained windows diverged from the rebuild "
          "(windows_identical=${identical}):\n${bench_output}")
endif()
string(JSON batches GET "${bench_report}" batches)
if(batches LESS 2)
  message(FATAL_ERROR "smoke run streamed only ${batches} batches")
endif()
# The post-loop pipelined window pass (GRIMP_PIPELINE=4 vs serial, same
# nonces) must also be bit-identical, and the bench records its thread
# budget so capped runs are never mistaken for full-machine numbers.
string(JSON pipe_identical GET "${bench_report}" pipeline identical)
if(NOT pipe_identical STREQUAL "ON")
  message(FATAL_ERROR
          "pipelined windows diverged from the serial path "
          "(pipeline.identical=${pipe_identical}):\n${bench_output}")
endif()
string(JSON bench_threads GET "${bench_report}" max_threads)
if(bench_threads LESS 1)
  message(FATAL_ERROR "max_threads is ${bench_threads}")
endif()
string(JSON version GET "${bench_report}" fine_tune serving_version)
if(NOT version STREQUAL "v1")
  message(FATAL_ERROR
          "fine-tune did not hot-swap the published model "
          "(serving_version=${version})")
endif()

if(NOT EXISTS "${metrics}")
  message(FATAL_ERROR "GRIMP_METRICS_JSON sink ${metrics} was not written")
endif()
file(READ "${metrics}" metrics_json)

# Every streaming stage must have reported: graph construction + flush +
# ingest + window-impute + fine-tune spans, the ingest latency histogram,
# per-stage counters, and the live-table gauges.
foreach(span stream.live_graph.create stream.live_graph.flush stream.ingest
        stream.impute_window stream.fine_tune)
  string(JSON span_count GET "${metrics_json}" spans "${span}" count)
  if(span_count LESS 1)
    message(FATAL_ERROR "span ${span} has count ${span_count}")
  endif()
endforeach()

string(JSON ingest_batches GET "${metrics_json}" counters
       stream.ingest.batches)
string(JSON ingest_rows GET "${metrics_json}" counters stream.ingest.rows)
string(JSON flushes GET "${metrics_json}" counters stream.flushes)
string(JSON imputes GET "${metrics_json}" counters stream.imputes)
string(JSON fine_tunes GET "${metrics_json}" counters stream.fine_tunes)
string(JSON publishes GET "${metrics_json}" counters stream.publishes)
if(NOT ingest_batches EQUAL ${batches})
  message(FATAL_ERROR
          "stream.ingest.batches is ${ingest_batches}, expected ${batches}")
endif()
if(ingest_rows LESS 1)
  message(FATAL_ERROR "stream.ingest.rows is ${ingest_rows}")
endif()
if(flushes LESS ${batches})
  message(FATAL_ERROR "stream.flushes is ${flushes}, expected >= ${batches}")
endif()
if(imputes LESS ${batches})
  message(FATAL_ERROR "stream.imputes is ${imputes}, expected >= ${batches}")
endif()
if(NOT fine_tunes EQUAL 1)
  message(FATAL_ERROR "stream.fine_tunes is ${fine_tunes}, expected 1")
endif()
# v0 at engine creation plus v1 after the fine-tune.
if(NOT publishes EQUAL 2)
  message(FATAL_ERROR "stream.publishes is ${publishes}, expected 2")
endif()

# Window inference runs through the batch-prep pipeline (inline at depth 0,
# async producer slots in the depth-4 pass above), so its counters and the
# slot-preparation span must be in the dump.
string(JSON pipe_produced GET "${metrics_json}" counters
       train.pipeline.produced)
string(JSON pipe_consumed GET "${metrics_json}" counters
       train.pipeline.consumed)
if(pipe_produced LESS 1 OR pipe_consumed LESS 1)
  message(FATAL_ERROR
          "train.pipeline produced=${pipe_produced} "
          "consumed=${pipe_consumed}")
endif()
string(JSON pipe_prepare GET "${metrics_json}" spans train.pipeline.prepare
       count)
if(pipe_prepare LESS 1)
  message(FATAL_ERROR
          "span train.pipeline.prepare has count ${pipe_prepare}")
endif()

string(JSON ingest_hist GET "${metrics_json}" histograms stream.ingest.micros
       count)
if(NOT ingest_hist EQUAL ${batches})
  message(FATAL_ERROR
          "stream.ingest.micros count is ${ingest_hist}, expected ${batches}")
endif()
# 450-row seed prefix plus 7 full 64-row batches (the 2-row tail is not
# streamed).
string(JSON live_rows GET "${metrics_json}" gauges stream.live_rows)
if(NOT live_rows EQUAL 898)
  message(FATAL_ERROR "stream.live_rows gauge is ${live_rows}, expected 898")
endif()
string(JSON serving GET "${metrics_json}" gauges stream.serving_version)
if(NOT serving EQUAL 1)
  message(FATAL_ERROR
          "stream.serving_version gauge is ${serving}, expected 1")
endif()

message(STATUS "stream metrics ok: batches=${ingest_batches}, "
        "flushes=${flushes}, imputes=${imputes}, publishes=${publishes}")
