# CTest helper: smoke-run sampled-mode training (bench_train at smoke size
# runs one full-graph and one neighbor-sampled config back to back) with
# GRIMP_METRICS_JSON set, then assert the dumped registry contains the
# train.* observability keys the minibatch pipeline must touch. Invoked as
#   cmake -DTRAIN_BIN=<exe> -DWORK_DIR=<dir> -P check_train_metrics.cmake

if(NOT DEFINED TRAIN_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DTRAIN_BIN=<exe> -DWORK_DIR=<dir> -P ...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(metrics "${WORK_DIR}/train_smoke_metrics.json")
file(REMOVE "${metrics}")

# Smoke size: below the bench's own speedup gate, large enough for several
# minibatches per task (200 rows * 0.8 non-missing > batch size 64).
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "GRIMP_METRICS_JSON=${metrics}"
          "${TRAIN_BIN}" --rows=200 --epochs=3
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE train_result
  OUTPUT_VARIABLE train_output
  ERROR_VARIABLE train_errors)
if(NOT train_result EQUAL 0)
  message(FATAL_ERROR
          "bench_train failed (${train_result}):\n${train_output}\n"
          "${train_errors}")
endif()

if(NOT EXISTS "${metrics}")
  message(FATAL_ERROR "GRIMP_METRICS_JSON sink ${metrics} was not written")
endif()
file(READ "${metrics}" metrics_json)

# The sampled epochs must have traced per-batch sampling and feature
# gathering, and both modes trace the umbrella training span plus the GNN
# forward (full-graph in full mode, per-block in sampled mode).
foreach(span train.sample train.gather gnn.forward grimp.train)
  string(JSON span_count GET "${metrics_json}" spans "${span}" count)
  if(span_count LESS 1)
    message(FATAL_ERROR "span ${span} has count ${span_count}")
  endif()
endforeach()

# grimp.train ran once per mode.
string(JSON train_runs GET "${metrics_json}" spans grimp.train count)
if(NOT train_runs EQUAL 2)
  message(FATAL_ERROR "expected 2 grimp.train spans, got ${train_runs}")
endif()

# 3 epochs x 2 modes land in the shared epoch-loss series; only the sampled
# mode appends per-step losses, at least one step per epoch.
string(JSON epoch_losses LENGTH "${metrics_json}" series
       grimp.epoch.train_loss)
if(NOT epoch_losses EQUAL 6)
  message(FATAL_ERROR
          "grimp.epoch.train_loss has ${epoch_losses} entries, expected 6")
endif()
string(JSON batch_losses LENGTH "${metrics_json}" series
       grimp.batch.train_loss)
if(batch_losses LESS 3)
  message(FATAL_ERROR
          "grimp.batch.train_loss has ${batch_losses} entries, expected >= 3")
endif()
string(JSON epoch_seconds LENGTH "${metrics_json}" series grimp.epoch.seconds)
if(NOT epoch_seconds EQUAL 6)
  message(FATAL_ERROR
          "grimp.epoch.seconds has ${epoch_seconds} entries, expected 6")
endif()

# Both runs published the parameter-count gauge.
string(JSON num_params GET "${metrics_json}" gauges grimp.num_parameters)
if(num_params LESS 1)
  message(FATAL_ERROR "grimp.num_parameters gauge is ${num_params}")
endif()

# The bench's own artifact must be valid JSON with a measured speedup.
if(NOT EXISTS "${WORK_DIR}/BENCH_train.json")
  message(FATAL_ERROR "BENCH_train.json was not written")
endif()
file(READ "${WORK_DIR}/BENCH_train.json" bench_json)
string(JSON bench_speedup GET "${bench_json}" epoch_speedup)
string(JSON num_configs LENGTH "${bench_json}" configs)
if(NOT num_configs EQUAL 2)
  message(FATAL_ERROR "BENCH_train.json has ${num_configs} configs")
endif()
if(bench_speedup LESS_EQUAL 0)
  message(FATAL_ERROR "BENCH_train.json speedup is ${bench_speedup}")
endif()

message(STATUS "train metrics ok: grimp.train runs=${train_runs}, "
        "batch losses=${batch_losses}, smoke speedup=${bench_speedup}")
