# CTest helper: smoke-run sampled-mode training (bench_train at smoke size
# runs one full-graph config plus the sampled pipeline-depth sweep 0/2/4
# back to back) with GRIMP_METRICS_JSON set, then assert the dumped
# registry contains the train.* observability keys the minibatch pipeline
# must touch — including the train.pipeline.* counters/gauge/histogram the
# async batch-prep pipeline publishes — and that BENCH_train.json reports
# the depth sweep bit-identical. Invoked as
#   cmake -DTRAIN_BIN=<exe> -DWORK_DIR=<dir> -P check_train_metrics.cmake

if(NOT DEFINED TRAIN_BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DTRAIN_BIN=<exe> -DWORK_DIR=<dir> -P ...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(metrics "${WORK_DIR}/train_smoke_metrics.json")
file(REMOVE "${metrics}")

# Smoke size: below the bench's own speedup gates, large enough for several
# minibatches per task (200 rows * 0.8 non-missing > batch size 64).
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "GRIMP_METRICS_JSON=${metrics}"
          "${TRAIN_BIN}" --rows=200 --epochs=3
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE train_result
  OUTPUT_VARIABLE train_output
  ERROR_VARIABLE train_errors)
if(NOT train_result EQUAL 0)
  message(FATAL_ERROR
          "bench_train failed (${train_result}):\n${train_output}\n"
          "${train_errors}")
endif()

if(NOT EXISTS "${metrics}")
  message(FATAL_ERROR "GRIMP_METRICS_JSON sink ${metrics} was not written")
endif()
file(READ "${metrics}" metrics_json)

# The sampled epochs must have traced per-batch sampling, feature gathering
# and pipeline slot preparation, and every config traces the umbrella
# training span plus the GNN forward (full-graph in full mode, per-block in
# sampled mode).
foreach(span train.sample train.gather train.pipeline.prepare gnn.forward
        grimp.train)
  string(JSON span_count GET "${metrics_json}" spans "${span}" count)
  if(span_count LESS 1)
    message(FATAL_ERROR "span ${span} has count ${span_count}")
  endif()
endforeach()

# grimp.train ran once per config: full plus sampled depths 0, 2, 4.
string(JSON train_runs GET "${metrics_json}" spans grimp.train count)
if(NOT train_runs EQUAL 4)
  message(FATAL_ERROR "expected 4 grimp.train spans, got ${train_runs}")
endif()

# The async batch-prep pipeline must have produced and consumed batches
# (the serial depth-0 config counts its inline batches too), published its
# lookahead gauge, and recorded consumer wait times for the pipelined
# configs.
string(JSON produced GET "${metrics_json}" counters train.pipeline.produced)
string(JSON consumed GET "${metrics_json}" counters train.pipeline.consumed)
if(produced LESS 1 OR consumed LESS 1)
  message(FATAL_ERROR
          "train.pipeline produced=${produced} consumed=${consumed}")
endif()
if(NOT produced EQUAL ${consumed})
  message(FATAL_ERROR
          "train.pipeline.produced ${produced} != consumed ${consumed}")
endif()
# Stalls are timing-dependent; the key must exist even if the count is 0.
string(JSON stalls GET "${metrics_json}" counters train.pipeline.stalls)
if(stalls LESS 0)
  message(FATAL_ERROR "train.pipeline.stalls is ${stalls}")
endif()
string(JSON queue_depth GET "${metrics_json}" gauges
       train.pipeline.queue_depth)
if(queue_depth LESS 0)
  message(FATAL_ERROR "train.pipeline.queue_depth gauge is ${queue_depth}")
endif()
string(JSON waits GET "${metrics_json}" histograms train.pipeline.wait_micros
       count)
if(waits LESS 1)
  message(FATAL_ERROR "train.pipeline.wait_micros count is ${waits}")
endif()

# 3 epochs x 4 configs land in the shared epoch-loss series; only sampled
# configs append per-step losses, at least one step per epoch.
string(JSON epoch_losses LENGTH "${metrics_json}" series
       grimp.epoch.train_loss)
if(NOT epoch_losses EQUAL 12)
  message(FATAL_ERROR
          "grimp.epoch.train_loss has ${epoch_losses} entries, expected 12")
endif()
string(JSON batch_losses LENGTH "${metrics_json}" series
       grimp.batch.train_loss)
if(batch_losses LESS 9)
  message(FATAL_ERROR
          "grimp.batch.train_loss has ${batch_losses} entries, expected >= 9")
endif()
string(JSON epoch_seconds LENGTH "${metrics_json}" series grimp.epoch.seconds)
if(NOT epoch_seconds EQUAL 12)
  message(FATAL_ERROR
          "grimp.epoch.seconds has ${epoch_seconds} entries, expected 12")
endif()

# Every run published the parameter-count gauge.
string(JSON num_params GET "${metrics_json}" gauges grimp.num_parameters)
if(num_params LESS 1)
  message(FATAL_ERROR "grimp.num_parameters gauge is ${num_params}")
endif()

# The bench's own artifact must be valid JSON with the full depth sweep, a
# measured full-vs-sampled speedup, and — the load-bearing invariant —
# bit-identical training across pipeline depths.
if(NOT EXISTS "${WORK_DIR}/BENCH_train.json")
  message(FATAL_ERROR "BENCH_train.json was not written")
endif()
file(READ "${WORK_DIR}/BENCH_train.json" bench_json)
string(JSON num_configs LENGTH "${bench_json}" configs)
if(NOT num_configs EQUAL 4)
  message(FATAL_ERROR "BENCH_train.json has ${num_configs} configs")
endif()
string(JSON bench_speedup GET "${bench_json}" epoch_speedup)
if(bench_speedup LESS_EQUAL 0)
  message(FATAL_ERROR "BENCH_train.json epoch_speedup is ${bench_speedup}")
endif()
string(JSON pipe_speedup GET "${bench_json}" pipeline_speedup)
if(pipe_speedup LESS_EQUAL 0)
  message(FATAL_ERROR
          "BENCH_train.json pipeline_speedup is ${pipe_speedup}")
endif()
string(JSON bit_identical GET "${bench_json}" bit_identical)
if(NOT bit_identical STREQUAL "ON")
  message(FATAL_ERROR
          "pipelined configs diverged from serial "
          "(bit_identical=${bit_identical}):\n${train_output}")
endif()

message(STATUS "train metrics ok: grimp.train runs=${train_runs}, "
        "pipeline produced=${produced}, stalls=${stalls}, "
        "smoke speedup=${bench_speedup}, bit_identical=${bit_identical}")
