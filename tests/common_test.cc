#include <gtest/gtest.h>

#include <set>

#include "common/csv.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace grimp {
namespace {

// --- Status / Result -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad dim");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad dim");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::NotFound("x");
  Status copy = st;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "x");
  Status moved = std::move(copy);
  EXPECT_TRUE(moved.IsNotFound());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kIoError,
        StatusCode::kNotImplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> DoubleIfPositive(int v) {
  GRIMP_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 3);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*DoubleIfPositive(4), 8);
  EXPECT_FALSE(DoubleIfPositive(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

// --- String utilities --------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  const std::vector<std::string> parts{"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, '|'), '|'), parts);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b \t"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, Fnv1aIsStableAndSeedSensitive) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
  EXPECT_NE(Fnv1a("abc", 1), Fnv1a("abc", 2));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(-0.5, 0), "-0");  // fixed notation rounding
  EXPECT_EQ(FormatDouble(2.0, 3), "2.000");
}

// --- RNG ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> w{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 4000; ++i) ones += rng.Categorical(w) == 1;
  EXPECT_NEAR(ones / 4000.0, 0.75, 0.03);
}

TEST(RngTest, CategoricalDegenerateInput) {
  Rng rng(13);
  std::vector<double> zeros{0.0, 0.0, 0.0};
  EXPECT_EQ(rng.Categorical(zeros), 2u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(19);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// --- CSV ---------------------------------------------------------------------

TEST(CsvTest, ParsesSimpleLine) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParsesQuotedFields) {
  auto fields = ParseCsvLine(R"("a,b",c,"he said ""hi""")");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields,
            (std::vector<std::string>{"a,b", "c", "he said \"hi\""}));
}

TEST(CsvTest, RejectsMalformedQuotes) {
  EXPECT_FALSE(ParseCsvLine("\"unterminated").ok());
  EXPECT_FALSE(ParseCsvLine("ab\"cd").ok());
}

TEST(CsvTest, ParseStringWithHeader) {
  auto data = ParseCsvString("h1,h2\n1,x\n2,y\n");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->header, (std::vector<std::string>{"h1", "h2"}));
  ASSERT_EQ(data->rows.size(), 2u);
  EXPECT_EQ(data->rows[1][1], "y");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsvString("a,b\n1\n").ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsvString("").ok());
}

TEST(CsvTest, EscapeRoundTrip) {
  const std::string tricky = "a,\"b\"\nc";
  const std::string escaped = EscapeCsvField("v,1", ',');
  EXPECT_EQ(escaped, "\"v,1\"");
  (void)tricky;
}

TEST(CsvTest, FileRoundTrip) {
  CsvData data;
  data.header = {"name", "value"};
  data.rows = {{"x,y", "1"}, {"plain", "2"}};
  const std::string path = ::testing::TempDir() + "/grimp_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, data).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->header, data.header);
  EXPECT_EQ(back->rows, data.rows);
}

TEST(CsvTest, MissingFileIsIoError) {
  auto r = ReadCsvFile("/nonexistent/definitely_missing.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIoError());
}

}  // namespace
}  // namespace grimp
