#include <gtest/gtest.h>

#include "core/corpus.h"
#include "core/tasks.h"
#include "tensor/optimizer.h"

namespace grimp {
namespace {

Table CorpusTable() {
  Schema schema({{"a", AttrType::kCategorical},
                 {"b", AttrType::kCategorical},
                 {"c", AttrType::kCategorical}});
  Table t(schema);
  // Row 0: all present (K=3 samples). Row 1: one missing (K=2).
  // Row 2: all missing (K=0).
  EXPECT_TRUE(t.AppendRow({"x", "y", "z"}).ok());
  EXPECT_TRUE(t.AppendRow({"x", "", "z"}).ok());
  EXPECT_TRUE(t.AppendRow({"", "", ""}).ok());
  return t;
}

TEST(CorpusTest, OneSamplePerPresentCell) {
  Table t = CorpusTable();
  Rng rng(1);
  TrainingCorpus corpus = BuildTrainingCorpus(t, 0.0, &rng);
  EXPECT_EQ(corpus.TotalSamples(), 5);  // paper Fig. 4: K per tuple
  EXPECT_TRUE(corpus.validation.empty());
  // No sample may target a missing cell.
  for (const TrainingSample& s : corpus.train) {
    EXPECT_FALSE(t.IsMissing(s.row, s.target_col));
  }
}

TEST(CorpusTest, ValidationSplitFraction) {
  Schema schema({{"a", AttrType::kCategorical}});
  Table t(schema);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.AppendRow({"v" + std::to_string(i % 5)}).ok());
  }
  Rng rng(2);
  TrainingCorpus corpus = BuildTrainingCorpus(t, 0.2, &rng);
  EXPECT_EQ(corpus.validation.size(), 20u);
  EXPECT_EQ(corpus.train.size(), 80u);
  const auto cells = corpus.ValidationCells();
  ASSERT_EQ(cells.size(), 20u);
  EXPECT_EQ(cells[0].col, 0);
}

TEST(CorpusTest, SplitIsDeterministicGivenRngState) {
  Table t = CorpusTable();
  Rng rng_a(3), rng_b(3);
  TrainingCorpus a = BuildTrainingCorpus(t, 0.4, &rng_a);
  TrainingCorpus b = BuildTrainingCorpus(t, 0.4, &rng_b);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].row, b.train[i].row);
    EXPECT_EQ(a.train[i].target_col, b.train[i].target_col);
  }
}

// --- K-matrix strategies (paper Fig. 7) -----------------------------------

TEST(KDiagonalTest, DiagonalWeighsAllEqually) {
  const auto d = BuildKDiagonal(KStrategy::kDiagonal, 1, 4, {});
  EXPECT_EQ(d, (std::vector<float>{1.0f, 1.0f, 1.0f, 1.0f}));
}

TEST(KDiagonalTest, TargetColumnIsolatesTarget) {
  const auto d = BuildKDiagonal(KStrategy::kTargetColumn, 2, 4, {});
  EXPECT_EQ(d, (std::vector<float>{0.0f, 0.0f, 1.0f, 0.0f}));
}

TEST(KDiagonalTest, WeakDiagonalBoostsTarget) {
  const auto d = BuildKDiagonal(KStrategy::kWeakDiagonal, 0, 3, {});
  EXPECT_FLOAT_EQ(d[0], 1.0f);
  EXPECT_FLOAT_EQ(d[1], 0.3f);
  EXPECT_FLOAT_EQ(d[2], 0.3f);
}

TEST(KDiagonalTest, FdStrategyBoostsRelatedColumns) {
  // FD: col0 -> col2. Task for col2 should boost col0; task for col1
  // should not.
  std::vector<FunctionalDependency> fds{{{0}, 2}};
  const auto for_target2 = BuildKDiagonal(KStrategy::kWeakDiagonalFd, 2, 4,
                                          fds);
  EXPECT_FLOAT_EQ(for_target2[0], 0.6f);
  EXPECT_FLOAT_EQ(for_target2[1], 0.3f);
  EXPECT_FLOAT_EQ(for_target2[2], 1.0f);
  const auto for_target1 = BuildKDiagonal(KStrategy::kWeakDiagonalFd, 1, 4,
                                          fds);
  EXPECT_FLOAT_EQ(for_target1[0], 0.3f);
  EXPECT_FLOAT_EQ(for_target1[2], 0.3f);
}

TEST(KDiagonalTest, FdLhsTargetBoostsRhs) {
  std::vector<FunctionalDependency> fds{{{0}, 2}};
  const auto d = BuildKDiagonal(KStrategy::kWeakDiagonalFd, 0, 3, fds);
  EXPECT_FLOAT_EQ(d[0], 1.0f);
  EXPECT_FLOAT_EQ(d[2], 0.6f);
}

// --- Task heads -------------------------------------------------------------

TEST(LinearTaskHeadTest, ShapesAndGradients) {
  Rng rng(5);
  LinearTaskHead head("h", /*num_cols=*/3, /*dim=*/4, /*hidden=*/8,
                      /*out_dim=*/5, &rng);
  EXPECT_EQ(head.NumParameters(), (12 * 8 + 8) + (8 * 5 + 5));
  Tape tape;
  Rng frng(6);
  auto v = tape.Constant(Tensor::GlorotUniform(7, 12, &frng));
  auto out = head.Forward(&tape, v);
  EXPECT_EQ(tape.value(out).rows(), 7);
  EXPECT_EQ(tape.value(out).cols(), 5);
}

TEST(AttentionTaskHeadTest, ForwardShapesAndAttentionNormalized) {
  Rng rng(7);
  const int C = 3, D = 4;
  Rng frng(8);
  Tensor col_features = Tensor::GlorotUniform(C, D, &frng);
  AttentionTaskHead head("h", col_features,
                         BuildKDiagonal(KStrategy::kWeakDiagonal, 1, C, {}),
                         D, 6, &rng);
  Tape tape;
  auto v = tape.Constant(Tensor::GlorotUniform(5, C * D, &frng));
  Tensor att;
  auto out = head.ForwardWithAttention(&tape, v, &att);
  EXPECT_EQ(tape.value(out).rows(), 5);
  EXPECT_EQ(tape.value(out).cols(), 6);
  ASSERT_EQ(att.rows(), 5);
  ASSERT_EQ(att.cols(), C);
  for (int64_t r = 0; r < att.rows(); ++r) {
    float sum = 0;
    for (int64_t c = 0; c < att.cols(); ++c) {
      sum += att.at(r, c);
      EXPECT_GE(att.at(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(AttentionTaskHeadTest, QInitializedFromColumnFeatures) {
  Rng rng(9);
  const int C = 2, D = 3;
  Tensor col_features = Tensor::FromVector(C, D, {1, 2, 3, 4, 5, 6});
  AttentionTaskHead head("h", col_features,
                         BuildKDiagonal(KStrategy::kDiagonal, 0, C, {}), D, 2,
                         &rng);
  std::vector<Parameter*> params;
  head.CollectParameters(&params);
  // First collected parameter is Q.
  ASSERT_FALSE(params.empty());
  EXPECT_TRUE(AllClose(params[0]->value, col_features));
}

TEST(AttentionTaskHeadTest, TrainableEndToEnd) {
  Rng rng(10);
  const int C = 2, D = 3;
  Rng frng(11);
  Tensor col_features = Tensor::GlorotUniform(C, D, &frng);
  AttentionTaskHead head("h", col_features,
                         BuildKDiagonal(KStrategy::kWeakDiagonal, 0, C, {}),
                         D, 2, &rng);
  std::vector<Parameter*> params;
  head.CollectParameters(&params);
  const Tensor v = Tensor::GlorotUniform(8, C * D, &frng);
  const std::vector<int32_t> labels{0, 1, 0, 1, 0, 1, 0, 1};
  float first = 0, last = 0;
  Adam opt(params, 0.05f);
  for (int step = 0; step < 40; ++step) {
    Tape tape;
    auto out = head.Forward(&tape, tape.Constant(v));
    auto loss = tape.SoftmaxCrossEntropy(out, labels);
    if (step == 0) first = tape.value(loss).scalar();
    last = tape.value(loss).scalar();
    tape.Backward(loss);
    opt.Step();
    opt.ZeroGrad();
  }
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace grimp
