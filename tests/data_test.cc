#include <gtest/gtest.h>

#include "data/datasets.h"
#include "table/stats.h"

namespace grimp {
namespace {

TEST(DatasetRegistryTest, AllTenDatasetsExist) {
  const auto names = AllDatasetNames();
  EXPECT_EQ(names.size(), 10u);
  for (const auto& name : names) {
    auto spec = GetDatasetSpec(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_EQ(spec->name, name);
    EXPECT_FALSE(spec->abbreviation.empty());
  }
  EXPECT_FALSE(GetDatasetSpec("nope").ok());
}

class DatasetGenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetGenTest, MatchesSpecShape) {
  auto spec = GetDatasetSpec(GetParam());
  ASSERT_TRUE(spec.ok());
  auto table = GenerateDataset(*spec, 11, /*rows_override=*/200);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 200);
  EXPECT_EQ(table->num_cols(),
            static_cast<int>(spec->categorical.size() +
                             spec->numerical.size()));
  EXPECT_EQ(table->schema().NumCategorical(),
            static_cast<int>(spec->categorical.size()));
  EXPECT_EQ(table->schema().NumNumerical(),
            static_cast<int>(spec->numerical.size()));
  EXPECT_DOUBLE_EQ(table->MissingFraction(), 0.0);  // clean by contract
}

TEST_P(DatasetGenTest, DeterministicForSeed) {
  auto a = GenerateDatasetByName(GetParam(), 5, 50);
  auto b = GenerateDatasetByName(GetParam(), 5, 50);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int c = 0; c < a->num_cols(); ++c) {
    for (int64_t r = 0; r < a->num_rows(); ++r) {
      ASSERT_EQ(a->column(c).StringAt(r), b->column(c).StringAt(r))
          << GetParam() << " col " << c << " row " << r;
    }
  }
}

TEST_P(DatasetGenTest, DeclaredFdsHoldExactly) {
  auto spec = GetDatasetSpec(GetParam());
  ASSERT_TRUE(spec.ok());
  auto table = GenerateDataset(*spec, 23, 300);
  ASSERT_TRUE(table.ok());
  auto fds = ResolveFds(*spec, table->schema());
  ASSERT_TRUE(fds.ok());
  for (const FunctionalDependency& fd : *fds) {
    EXPECT_DOUBLE_EQ(FdViolationRate(*table, fd), 0.0)
        << fd.ToString(table->schema());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetGenTest,
                         ::testing::ValuesIn(AllDatasetNames()),
                         [](const auto& info) { return info.param; });

TEST(DatasetGenTest, FullSizesMatchPaperRowCounts) {
  // Table 1 row counts (generated at native size).
  const std::vector<std::pair<std::string, int64_t>> expected{
      {"adult", 3016},     {"australian", 690}, {"contraceptive", 1473},
      {"credit", 653},     {"flare", 1066},     {"imdb", 4529},
      {"mammogram", 830},  {"tax", 5000},       {"thoracic", 470},
      {"tictactoe", 958}};
  for (const auto& [name, rows] : expected) {
    auto spec = GetDatasetSpec(name);
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec->rows, rows) << name;
  }
}

TEST(DatasetGenTest, ColumnMixesMatchPaperTable1) {
  // |C| and |N| per dataset from Table 1.
  struct Mix {
    const char* name;
    int cat;
    int num;
  };
  for (const Mix& mix : std::initializer_list<Mix>{{"adult", 9, 5},
                                                   {"australian", 9, 6},
                                                   {"contraceptive", 8, 2},
                                                   {"credit", 10, 6},
                                                   {"flare", 10, 3},
                                                   {"imdb", 9, 2},
                                                   {"mammogram", 5, 1},
                                                   {"tax", 5, 7},
                                                   {"thoracic", 14, 3},
                                                   {"tictactoe", 9, 0}}) {
    auto spec = GetDatasetSpec(mix.name);
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(static_cast<int>(spec->categorical.size()), mix.cat)
        << mix.name;
    EXPECT_EQ(static_cast<int>(spec->numerical.size()), mix.num) << mix.name;
  }
}

TEST(DatasetGenTest, SkewRegimesMatchPaperDirections) {
  // Thoracic/Flare: high F+ with few frequent values; Tic-Tac-Toe:
  // near-uniform (low skew); IMDB: many distinct values.
  auto thoracic = GenerateDatasetByName("thoracic", 3, 470);
  auto ttt = GenerateDatasetByName("tictactoe", 3, 958);
  auto imdb = GenerateDatasetByName("imdb", 3, 1000);
  ASSERT_TRUE(thoracic.ok());
  ASSERT_TRUE(ttt.ok());
  ASSERT_TRUE(imdb.ok());
  const TableStats th = ComputeTableStats(*thoracic);
  const TableStats tt = ComputeTableStats(*ttt);
  const TableStats im = ComputeTableStats(*imdb);
  EXPECT_GT(th.frequent_frac_avg, tt.frequent_frac_avg * 0.9);
  EXPECT_GT(th.frequent_frac_avg, 0.5);
  EXPECT_LT(tt.skew_avg, 1.0);  // near-uniform columns
  // IMDB's distinct count dwarfs the others (title/director/actor).
  EXPECT_GT(im.num_distinct, th.num_distinct * 5);
  EXPECT_GT(im.num_frequent_avg, th.num_frequent_avg);
}

TEST(DatasetGenTest, ClustersMakeAttributesMutuallyPredictive) {
  // The generative model must produce learnable structure: knowing one
  // column should reduce uncertainty about another. Check via simple
  // co-occurrence: the modal "b"-value given the most frequent "a"-value
  // is more likely than b's global mode frequency would suggest... use
  // mutual-information-like check on contraceptive (mid skew).
  auto table = GenerateDatasetByName("contraceptive", 9, 1000);
  ASSERT_TRUE(table.ok());
  const Column& a = table->column(0);
  const Column& b = table->column(1);
  // P(b | a = mode(a)) concentration vs P(b) concentration.
  const int32_t a_mode = a.dict().MostFrequent();
  std::vector<int64_t> cond(static_cast<size_t>(b.dict().size()), 0);
  std::vector<int64_t> marg(static_cast<size_t>(b.dict().size()), 0);
  int64_t n_cond = 0;
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    ++marg[static_cast<size_t>(b.CodeAt(r))];
    if (a.CodeAt(r) == a_mode) {
      ++cond[static_cast<size_t>(b.CodeAt(r))];
      ++n_cond;
    }
  }
  const double cond_max =
      *std::max_element(cond.begin(), cond.end()) / static_cast<double>(n_cond);
  const double marg_max = *std::max_element(marg.begin(), marg.end()) /
                          static_cast<double>(table->num_rows());
  EXPECT_GT(cond_max, marg_max);
}

TEST(DatasetGenTest, RejectsBadInputs) {
  auto spec = GetDatasetSpec("adult");
  ASSERT_TRUE(spec.ok());
  DatasetSpec bad_rows = *spec;
  bad_rows.rows = 0;
  EXPECT_FALSE(GenerateDataset(bad_rows, 1).ok());
  DatasetSpec bad_clusters = *spec;
  bad_clusters.num_clusters = 0;
  EXPECT_FALSE(GenerateDataset(bad_clusters, 1, 10).ok());
}

// --- The "scale" spec and the large-dataset fast path ----------------------

TEST(ScaleDatasetTest, SpecResolvesButStaysOutOfTheSweepList) {
  auto spec = GetDatasetSpec("scale");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->rows, 5000000);
  EXPECT_FALSE(spec->fd_specs.empty());
  // Deliberately not swept by the parameterized suites/accuracy benches.
  for (const std::string& name : AllDatasetNames()) {
    EXPECT_NE(name, "scale");
  }
}

TEST(ScaleDatasetTest, LargeGeneratorMatchesSpecShape) {
  auto spec = GetDatasetSpec("scale");
  ASSERT_TRUE(spec.ok());
  auto table = GenerateLargeDataset(*spec, 11, /*rows_override=*/5000);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 5000);
  EXPECT_EQ(table->num_cols(),
            static_cast<int>(spec->categorical.size() +
                             spec->numerical.size()));
  EXPECT_DOUBLE_EQ(table->MissingFraction(), 0.0);
  // Every categorical domain is bounded by its declared cardinality.
  for (size_t c = 0; c < spec->categorical.size(); ++c) {
    const Column& col = table->column(static_cast<int>(c));
    ASSERT_TRUE(col.is_categorical());
    EXPECT_LE(col.dict().size(), spec->categorical[c].cardinality);
  }
  // Declared FDs hold exactly, same contract as the row-wise generator.
  auto fds = ResolveFds(*spec, table->schema());
  ASSERT_TRUE(fds.ok());
  for (const FunctionalDependency& fd : *fds) {
    EXPECT_DOUBLE_EQ(FdViolationRate(*table, fd), 0.0)
        << fd.ToString(table->schema());
  }
}

TEST(ScaleDatasetTest, LargeGeneratorIsDeterministicForSeed) {
  auto spec = GetDatasetSpec("scale");
  ASSERT_TRUE(spec.ok());
  auto a = GenerateLargeDataset(*spec, 9, 2000);
  auto b = GenerateLargeDataset(*spec, 9, 2000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int c = 0; c < a->num_cols(); ++c) {
    for (int64_t r = 0; r < a->num_rows(); ++r) {
      ASSERT_EQ(a->column(c).StringAt(r), b->column(c).StringAt(r))
          << "col " << c << " row " << r;
    }
  }
}

TEST(ScaleDatasetTest, LargeGeneratorRejectsTextColumns) {
  auto spec = GetDatasetSpec("scale");
  ASSERT_TRUE(spec.ok());
  DatasetSpec with_text = *spec;
  CategoricalColumnSpec text;
  text.name = "title";
  text.high_cardinality_text = true;
  with_text.categorical.push_back(text);
  EXPECT_FALSE(GenerateLargeDataset(with_text, 1, 100).ok());
}

}  // namespace
}  // namespace grimp
