#include <gtest/gtest.h>

#include <cmath>

#include "embedding/embdi.h"
#include "embedding/ngram_init.h"
#include "embedding/random_init.h"
#include "embedding/skipgram.h"
#include "embedding/walks.h"
#include "graph/builder.h"

namespace grimp {
namespace {

Table SmallTable() {
  Schema schema({{"color", AttrType::kCategorical},
                 {"size", AttrType::kCategorical},
                 {"price", AttrType::kNumerical}});
  Table t(schema);
  EXPECT_TRUE(t.AppendRow({"red", "small", "1.0"}).ok());
  EXPECT_TRUE(t.AppendRow({"red", "small", "1.1"}).ok());
  EXPECT_TRUE(t.AppendRow({"blue", "large", "9.0"}).ok());
  EXPECT_TRUE(t.AppendRow({"blue", "", "8.5"}).ok());
  return t;
}

float Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0 || nb == 0) return 0.0f;
  return static_cast<float>(dot / std::sqrt(na * nb));
}

class FeatureInitShapeTest
    : public ::testing::TestWithParam<FeatureInitKind> {};

TEST_P(FeatureInitShapeTest, ProducesCorrectShapes) {
  Table t = SmallTable();
  TableGraph tg = BuildTableGraph(t);
  auto init = MakeFeatureInitializer(GetParam());
  ASSERT_NE(init, nullptr);
  auto features = init->Init(t, tg, 16, 42);
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->node_features.rows(), tg.graph.num_nodes());
  EXPECT_EQ(features->node_features.cols(), 16);
  EXPECT_EQ(features->column_features.rows(), t.num_cols());
  EXPECT_EQ(features->column_features.cols(), 16);
  EXPECT_GT(features->node_features.SumAbs(), 0.0f);
  EXPECT_GT(features->column_features.SumAbs(), 0.0f);
}

TEST_P(FeatureInitShapeTest, DeterministicForSeed) {
  Table t = SmallTable();
  TableGraph tg = BuildTableGraph(t);
  auto init = MakeFeatureInitializer(GetParam());
  auto a = init->Init(t, tg, 8, 7);
  auto b = init->Init(t, tg, 8, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(AllClose(a->node_features, b->node_features));
}

TEST_P(FeatureInitShapeTest, RejectsBadDim) {
  Table t = SmallTable();
  TableGraph tg = BuildTableGraph(t);
  auto init = MakeFeatureInitializer(GetParam());
  EXPECT_FALSE(init->Init(t, tg, 0, 1).ok());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FeatureInitShapeTest,
                         ::testing::Values(FeatureInitKind::kRandom,
                                           FeatureInitKind::kNgram,
                                           FeatureInitKind::kEmbdi),
                         [](const auto& info) {
                           return FeatureInitKindName(info.param);
                         });

TEST(NgramInitTest, TypoStaysCloserThanUnrelatedString) {
  NgramFeatureInit init;
  const auto base = init.EmbedString("california", 32, 1);
  const auto typo = init.EmbedString("califxornia", 32, 1);
  const auto other = init.EmbedString("zqwkjv", 32, 1);
  EXPECT_GT(Cosine(base, typo), Cosine(base, other));
  EXPECT_GT(Cosine(base, typo), 0.5f);
}

TEST(NgramInitTest, EmptyStringIsZeroVector) {
  NgramFeatureInit init;
  const auto v = init.EmbedString("", 8, 1);
  for (float x : v) EXPECT_EQ(x, 0.0f);
}

TEST(NgramInitTest, VectorsAreUnitNorm) {
  NgramFeatureInit init;
  const auto v = init.EmbedString("hello", 16, 3);
  double norm = 0;
  for (float x : v) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(WalkGraphTest, SampleNeighborRespectsWeights) {
  WalkGraph g(3);
  g.AddEdge(0, 1, 9.0);
  g.AddEdge(0, 2, 1.0);
  g.Finalize();
  Rng rng(5);
  int ones = 0;
  for (int i = 0; i < 2000; ++i) ones += g.SampleNeighbor(0, &rng) == 1;
  EXPECT_NEAR(ones / 2000.0, 0.9, 0.03);
}

TEST(WalkGraphTest, IsolatedNodeReturnsMinusOne) {
  WalkGraph g(2);
  g.Finalize();
  Rng rng(1);
  EXPECT_EQ(g.SampleNeighbor(0, &rng), -1);
}

TEST(WalkGraphTest, GenerateWalksShapesAndValidity) {
  WalkGraph g(4);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(2, 3, 1.0);
  g.Finalize();
  Rng rng(3);
  const auto walks = GenerateWalks(g, 2, 5, &rng);
  EXPECT_EQ(walks.size(), 8u);
  for (const auto& walk : walks) {
    ASSERT_FALSE(walk.empty());
    EXPECT_LE(walk.size(), 5u);
    for (size_t i = 1; i < walk.size(); ++i) {
      // Consecutive tokens must be neighbors (chain graph: differ by 1).
      EXPECT_EQ(std::abs(walk[i] - walk[i - 1]), 1);
    }
  }
}

TEST(SkipGramTest, CooccurringTokensEndUpCloser) {
  // Two "topics": tokens 0-3 co-occur, tokens 4-7 co-occur.
  std::vector<std::vector<int32_t>> corpus;
  Rng rng(11);
  for (int s = 0; s < 300; ++s) {
    std::vector<int32_t> sent;
    const int32_t base = (s % 2 == 0) ? 0 : 4;
    for (int i = 0; i < 8; ++i) {
      sent.push_back(base + static_cast<int32_t>(rng.Uniform(4)));
    }
    corpus.push_back(std::move(sent));
  }
  SkipGramOptions opt;
  opt.dim = 16;
  opt.epochs = 5;
  SkipGramModel model(8, opt, 17);
  model.Train(corpus);
  const Tensor& emb = model.embeddings();
  auto cosine_rows = [&](int64_t a, int64_t b) {
    double dot = 0, na = 0, nb = 0;
    for (int64_t k = 0; k < emb.cols(); ++k) {
      dot += emb.at(a, k) * emb.at(b, k);
      na += emb.at(a, k) * emb.at(a, k);
      nb += emb.at(b, k) * emb.at(b, k);
    }
    return dot / std::sqrt(na * nb);
  };
  // Within-topic similarity must exceed cross-topic similarity.
  const double within = (cosine_rows(0, 1) + cosine_rows(4, 5)) / 2.0;
  const double across = (cosine_rows(0, 4) + cosine_rows(1, 5)) / 2.0;
  EXPECT_GT(within, across);
}

TEST(EmbdiInitTest, SameValueTuplesGetSimilarRidEmbeddings) {
  Table t = SmallTable();
  TableGraph tg = BuildTableGraph(t);
  EmbdiFeatureInit init;
  auto features = init.Init(t, tg, 16, 9);
  ASSERT_TRUE(features.ok());
  const Tensor& f = features->node_features;
  auto cos = [&](int64_t a, int64_t b) {
    double dot = 0, na = 0, nb = 0;
    for (int64_t k = 0; k < f.cols(); ++k) {
      dot += f.at(a, k) * f.at(b, k);
      na += f.at(a, k) * f.at(a, k);
      nb += f.at(b, k) * f.at(b, k);
    }
    return dot / (std::sqrt(na * nb) + 1e-12);
  };
  // Rows 0 and 1 share color+size; rows 0 and 2 share nothing.
  EXPECT_GT(cos(tg.rid_nodes[0], tg.rid_nodes[1]),
            cos(tg.rid_nodes[0], tg.rid_nodes[2]));
}

}  // namespace
}  // namespace grimp
