// Concurrency contract of GrimpEngine: after Fit, Transform and
// TransformBatch are const and touch no shared mutable state, so any number
// of threads may impute on one engine simultaneously and every result must
// be bit-identical to a serial call. Run under GRIMP_SANITIZE=thread to
// catch violations the assertions can't see.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"

namespace grimp {
namespace {

Table TrainingTable() {
  Schema schema({{"brand", AttrType::kCategorical},
                 {"model", AttrType::kCategorical},
                 {"price", AttrType::kNumerical}});
  Table t(schema);
  const char* brands[] = {"acer", "dell", "apple", "lenovo"};
  const char* models[] = {"swift", "xps", "mac", "yoga"};
  const char* prices[] = {"4", "7", "12", "6"};
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(t.AppendRow({brands[i], models[i], prices[i]}).ok());
    }
  }
  return t;
}

Table DirtyRow(int which) {
  Table t(TrainingTable().schema());
  switch (which % 3) {
    case 0:
      EXPECT_TRUE(t.AppendRow({"acer", "", "4"}).ok());
      break;
    case 1:
      EXPECT_TRUE(t.AppendRow({"", "xps", "7"}).ok());
      break;
    default:
      EXPECT_TRUE(t.AppendRow({"apple", "mac", ""}).ok());
      break;
  }
  return t;
}

std::unique_ptr<GrimpEngine> FitEngine() {
  GrimpOptions options;
  options.dim = 8;
  options.shared_hidden = 16;
  options.task_hidden = 16;
  options.max_epochs = 10;
  options.validation_fraction = 0.0;
  options.seed = 7;
  auto engine = std::make_unique<GrimpEngine>(options);
  EXPECT_TRUE(engine->Fit(TrainingTable()).ok());
  return engine;
}

std::vector<std::string> RowCells(const Table& table) {
  std::vector<std::string> cells;
  for (int c = 0; c < table.num_cols(); ++c) {
    cells.push_back(table.column(c).StringAt(0));
  }
  return cells;
}

TEST(EngineConcurrentTest, ParallelTransformsAreBitIdenticalToSerial) {
  auto engine = FitEngine();

  // Serial baselines for each of the three request shapes.
  std::vector<std::vector<std::string>> baseline;
  for (int which = 0; which < 3; ++which) {
    auto result = engine->Transform(DirtyRow(which));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    baseline.push_back(RowCells(*result));
  }

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 5;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const int which = (t + i) % 3;
        auto result = engine->Transform(DirtyRow(which));
        if (!result.ok() ||
            RowCells(*result) != baseline[static_cast<size_t>(which)]) {
          mismatches[t]++;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

TEST(EngineConcurrentTest, TransformBatchMatchesIndividualTransforms) {
  auto engine = FitEngine();

  std::vector<Table> requests;
  for (int which = 0; which < 3; ++which) requests.push_back(DirtyRow(which));
  std::vector<const Table*> pointers;
  for (const Table& t : requests) pointers.push_back(&t);

  auto batched = engine->TransformBatch(pointers);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched->size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    auto solo = engine->Transform(requests[i]);
    ASSERT_TRUE(solo.ok()) << solo.status().ToString();
    EXPECT_EQ(RowCells((*batched)[i]), RowCells(*solo)) << "request " << i;
  }
}

TEST(EngineConcurrentTest, SingleRequestBatchEqualsTransform) {
  auto engine = FitEngine();
  const Table dirty = DirtyRow(0);
  auto solo = engine->Transform(dirty);
  auto batched = engine->TransformBatch({&dirty});
  ASSERT_TRUE(solo.ok() && batched.ok());
  ASSERT_EQ(batched->size(), 1u);
  EXPECT_EQ(RowCells((*batched)[0]), RowCells(*solo));
}

TEST(EngineConcurrentTest, ConcurrentBatchesAreBitIdentical) {
  auto engine = FitEngine();

  std::vector<Table> requests;
  for (int which = 0; which < 3; ++which) requests.push_back(DirtyRow(which));
  std::vector<const Table*> pointers;
  for (const Table& t : requests) pointers.push_back(&t);
  auto baseline = engine->TransformBatch(pointers);
  ASSERT_TRUE(baseline.ok());
  std::vector<std::vector<std::string>> expected;
  for (const Table& t : *baseline) expected.push_back(RowCells(t));

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto result = engine->TransformBatch(pointers);
      if (!result.ok() || result->size() != expected.size()) {
        mismatches[t] = 1;
        return;
      }
      for (size_t i = 0; i < expected.size(); ++i) {
        if (RowCells((*result)[i]) != expected[i]) mismatches[t]++;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace grimp
