#include <gtest/gtest.h>

#include <sstream>

#include "baselines/mean_mode.h"
#include "eval/error_analysis.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/runner.h"

namespace grimp {
namespace {

Table EvalTable() {
  Schema schema({{"cat", AttrType::kCategorical},
                 {"num", AttrType::kNumerical}});
  Table t(schema);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(
        t.AppendRow({i < 6 ? "common" : "rare", std::to_string(i)}).ok());
  }
  return t;
}

TEST(MetricsTest, PerfectImputationScoresOne) {
  Table clean = EvalTable();
  CorruptedTable corrupted = InjectMcar(clean, 0.3, 1);
  ASSERT_FALSE(corrupted.missing_cells.empty());
  // "Impute" with the ground truth itself.
  const ImputationScore score = ScoreImputation(clean, corrupted, clean);
  EXPECT_EQ(score.categorical_correct, score.categorical_cells);
  EXPECT_DOUBLE_EQ(score.Rmse(), 0.0);
  EXPECT_DOUBLE_EQ(score.NormalizedRmse(), 0.0);
  EXPECT_EQ(score.cells_left_missing, 0);
}

TEST(MetricsTest, WrongImputationCounted) {
  Schema schema({{"c", AttrType::kCategorical}});
  Table clean(schema);
  ASSERT_TRUE(clean.AppendRow({"a"}).ok());
  ASSERT_TRUE(clean.AppendRow({"b"}).ok());
  CorruptedTable corrupted;
  corrupted.dirty = clean;
  corrupted.dirty.mutable_column(0).SetMissing(0);
  corrupted.missing_cells = {CellRef{0, 0}};
  corrupted.original_codes = {clean.column(0).CodeAt(0)};
  corrupted.original_nums = {std::nan("")};
  Table imputed = corrupted.dirty;
  imputed.mutable_column(0).SetCategorical(0, "b");  // wrong
  const ImputationScore score = ScoreImputation(imputed, corrupted, clean);
  EXPECT_EQ(score.categorical_cells, 1);
  EXPECT_EQ(score.categorical_correct, 0);
}

TEST(MetricsTest, NumericalRmse) {
  Schema schema({{"n", AttrType::kNumerical}});
  Table clean(schema);
  ASSERT_TRUE(clean.AppendRow({"10"}).ok());
  ASSERT_TRUE(clean.AppendRow({"20"}).ok());
  CorruptedTable corrupted;
  corrupted.dirty = clean;
  corrupted.dirty.mutable_column(0).SetMissing(0);
  corrupted.dirty.mutable_column(0).SetMissing(1);
  corrupted.missing_cells = {CellRef{0, 0}, CellRef{1, 0}};
  Table imputed = corrupted.dirty;
  imputed.mutable_column(0).SetNumerical(0, 13.0);  // err 3
  imputed.mutable_column(0).SetNumerical(1, 16.0);  // err 4
  const ImputationScore score = ScoreImputation(imputed, corrupted, clean);
  EXPECT_EQ(score.numerical_cells, 2);
  EXPECT_NEAR(score.Rmse(), std::sqrt((9.0 + 16.0) / 2.0), 1e-9);
}

TEST(MetricsTest, CellsLeftMissingPenalized) {
  Table clean = EvalTable();
  CorruptedTable corrupted = InjectMcar(clean, 0.4, 2);
  // No imputation at all: categorical all wrong, numeric scored at mean.
  const ImputationScore score =
      ScoreImputation(corrupted.dirty, corrupted, clean);
  EXPECT_EQ(score.cells_left_missing,
            static_cast<int64_t>(corrupted.missing_cells.size()));
  EXPECT_EQ(score.categorical_correct, 0);
}

TEST(ErrorAnalysisTest, RowsSortedByFrequencyWithExpectedError) {
  Table clean = EvalTable();
  CorruptedTable corrupted = InjectMcar(clean, 0.5, 3);
  MeanModeImputer mode;
  Table imputed;
  RunResult rr = RunAlgorithm(clean, corrupted, &mode, &imputed);
  ASSERT_TRUE(rr.status.ok());
  const auto rows = AnalyzeValueErrors(clean, corrupted, imputed, 0);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].value, "common");
  EXPECT_EQ(rows[1].value, "rare");
  EXPECT_NEAR(rows[0].expected_error, 1.0 - 6.0 / 8.0, 1e-12);
  // Mode imputation: every missing "common" correct, every "rare" wrong.
  EXPECT_EQ(rows[0].wrong, 0);
  EXPECT_EQ(rows[1].wrong, rows[1].test_cells);
  int64_t total_tests = rows[0].test_cells + rows[1].test_cells;
  int64_t missing_cat = 0;
  for (const CellRef& cell : corrupted.missing_cells) {
    missing_cat += cell.col == 0;
  }
  EXPECT_EQ(total_tests, missing_cat);
}

TEST(RunnerTest, ScoresAndTimesAlgorithm) {
  Table clean = EvalTable();
  CorruptedTable corrupted = InjectMcar(clean, 0.3, 4);
  MeanModeImputer mode;
  const RunResult rr = RunAlgorithm(clean, corrupted, &mode);
  EXPECT_TRUE(rr.status.ok());
  EXPECT_EQ(rr.algorithm, "MEAN-MODE");
  EXPECT_GE(rr.seconds, 0.0);
  EXPECT_GT(rr.score.categorical_cells + rr.score.numerical_cells, 0);
}

TEST(ReportTest, TextTableAlignsAndCsvMatches) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", TextTable::Num(1.2345, 2)});
  table.AddRow({"b", "xyz"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  std::ostringstream csv;
  table.PrintCsv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1.23\nb,xyz\n");
}

}  // namespace
}  // namespace grimp
