// Tests for the paper's §7 extension features: MNAR injection, the MICE /
// MIDA related-work baselines, hyperparameter tuning, graph pruning,
// training-data reduction, and the inductive Fit/Transform engine.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/featurize.h"
#include "baselines/mice.h"
#include "baselines/mida.h"
#include "common/metrics.h"
#include "core/engine.h"
#include "core/tuner.h"
#include "data/datasets.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "graph/builder.h"
#include "common/string_util.h"

namespace grimp {
namespace {

Table StructuredTable(int64_t rows) {
  Schema schema({{"a", AttrType::kCategorical},
                 {"b", AttrType::kCategorical},
                 {"num", AttrType::kNumerical}});
  Table t(schema);
  for (int64_t i = 0; i < rows; ++i) {
    const int a = static_cast<int>(i % 4);
    EXPECT_TRUE(t.AppendRow({"alpha" + std::to_string(a),
                             "beta" + std::to_string(a % 2),
                             std::to_string(10 * a)})
                    .ok());
  }
  return t;
}

// --- MNAR ------------------------------------------------------------------

TEST(MnarTest, OverallRateApproximatesTarget) {
  auto clean = GenerateDatasetByName("flare", 3, 2000);
  ASSERT_TRUE(clean.ok());
  const CorruptedTable mnar = InjectMnar(*clean, 0.2, 0.8, 5);
  EXPECT_NEAR(mnar.dirty.MissingFraction(), 0.2, 0.04);
}

TEST(MnarTest, RareValuesGoMissingMoreOften) {
  // Column with an 80/20 split: under MNAR with strong bias, the rare
  // value's missingness rate must exceed the frequent value's.
  Schema schema({{"c", AttrType::kCategorical}});
  Table t(schema);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(t.AppendRow({i % 5 == 0 ? "rare" : "common"}).ok());
  }
  const CorruptedTable mnar = InjectMnar(t, 0.2, 1.0, 9);
  int64_t rare_missing = 0, common_missing = 0;
  for (size_t i = 0; i < mnar.missing_cells.size(); ++i) {
    const std::string& truth =
        t.column(0).StringAt(mnar.missing_cells[i].row);
    (truth == "rare" ? rare_missing : common_missing)++;
  }
  const double rare_rate = static_cast<double>(rare_missing) / 800.0;
  const double common_rate = static_cast<double>(common_missing) / 3200.0;
  EXPECT_GT(rare_rate, common_rate * 1.5);
}

TEST(MnarTest, ExtremeNumericValuesGoMissingMoreOften) {
  Schema schema({{"n", AttrType::kNumerical}});
  Table t(schema);
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(t.AppendRow({FormatDouble(rng.NextGaussian(), 3)}).ok());
  }
  const CorruptedTable mnar = InjectMnar(t, 0.2, 1.0, 11);
  double missing_abs = 0.0;
  for (const CellRef& cell : mnar.missing_cells) {
    missing_abs += std::fabs(t.column(0).NumAt(cell.row));
  }
  missing_abs /= static_cast<double>(mnar.missing_cells.size());
  // Mean |z| of a standard normal is ~0.8; the missing subset must skew
  // higher.
  EXPECT_GT(missing_abs, 0.9);
}

TEST(MnarTest, ZeroBiasIsRejectedAndGroundTruthConsistent) {
  Table t = StructuredTable(50);
  const CorruptedTable mnar = InjectMnar(t, 0.3, 0.5, 1);
  for (size_t i = 0; i < mnar.missing_cells.size(); ++i) {
    const CellRef cell = mnar.missing_cells[i];
    EXPECT_TRUE(mnar.dirty.IsMissing(cell.row, cell.col));
    EXPECT_EQ(mnar.original_codes[i],
              t.column(cell.col).CodeAt(cell.row));
  }
}

// --- MICE / MIDA -------------------------------------------------------------

TEST(MiceTest, RecoversStructuredCells) {
  Table clean = StructuredTable(150);
  const CorruptedTable corrupted = InjectMcar(clean, 0.2, 7);
  MiceImputer mice;
  Table imputed;
  const RunResult rr = RunAlgorithm(clean, corrupted, &mice, &imputed);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_DOUBLE_EQ(imputed.MissingFraction(), 0.0);
  EXPECT_GT(rr.score.Accuracy(), 0.8);
}

TEST(MiceTest, HandlesHighCardinalityViaOtherBucket) {
  auto clean = GenerateDatasetByName("imdb", 3, 120);
  ASSERT_TRUE(clean.ok());
  const CorruptedTable corrupted = InjectMcar(*clean, 0.2, 9);
  MiceOptions options;
  options.rounds = 1;
  options.steps_per_model = 20;
  MiceImputer mice(options);
  auto imputed = mice.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
}

TEST(MidaTest, FillsAllAndBeatsChance) {
  Table clean = StructuredTable(200);
  const CorruptedTable corrupted = InjectMcar(clean, 0.2, 11);
  MidaImputer mida;
  Table imputed;
  const RunResult rr = RunAlgorithm(clean, corrupted, &mida, &imputed);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_DOUBLE_EQ(imputed.MissingFraction(), 0.0);
  // 4- and 2-value columns: chance is ~0.375 on average.
  EXPECT_GT(rr.score.Accuracy(), 0.55);
}

TEST(MidaTest, RejectsEmptyTable) {
  Table empty;
  EXPECT_FALSE(MidaImputer().Impute(empty).ok());
  EXPECT_FALSE(MiceImputer().Impute(empty).ok());
}

// --- One-hot plan --------------------------------------------------------------

TEST(FeaturizeTest, PlanCapsWidthAndDecodes) {
  Column col(Field{"c", AttrType::kCategorical});
  for (int i = 0; i < 100; ++i) {
    col.AppendCategorical("v" + std::to_string(i % 10));
  }
  const OneHotPlan plan = PlanOneHot(col, 4);
  EXPECT_EQ(plan.width, 4);  // 3 direct + other
  // Every live code maps to a slot; slots decode to live codes.
  for (int32_t code = 0; code < col.dict().size(); ++code) {
    const int slot = plan.slot_of_code[static_cast<size_t>(code)];
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, plan.width);
  }
  for (int32_t code : plan.code_of_slot) {
    EXPECT_GT(col.dict().CountOf(code), 0);
  }
}

TEST(FeaturizeTest, SmallDomainGetsNoOtherBucket) {
  Column col(Field{"c", AttrType::kCategorical});
  col.AppendCategorical("x");
  col.AppendCategorical("y");
  const OneHotPlan plan = PlanOneHot(col, 8);
  EXPECT_EQ(plan.width, 2);
}

// --- Tuner ---------------------------------------------------------------------

TEST(TunerTest, PicksAConfigurationAndRanksTrials) {
  Table clean = StructuredTable(100);
  const CorruptedTable corrupted = InjectMcar(clean, 0.2, 13);
  TunerOptions tuner;
  tuner.dims = {8};
  tuner.task_kinds = {TaskKind::kAttention, TaskKind::kLinear};
  tuner.features = {FeatureInitKind::kNgram};
  tuner.max_epochs = 10;
  auto report = TuneGrimp(corrupted.dirty, tuner);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->trials.size(), 2u);
  EXPECT_GE(report->best_score, 0.0);
  for (const TunerTrial& trial : report->trials) {
    EXPECT_LE(trial.score, report->best_score);
  }
  // Winning config gets the full default budget back.
  EXPECT_EQ(report->best.max_epochs, GrimpOptions().max_epochs);
  EXPECT_FALSE(DescribeOptions(report->best).empty());
}

TEST(TunerTest, RejectsBadAxes) {
  Table clean = StructuredTable(30);
  TunerOptions tuner;
  tuner.dims = {};
  EXPECT_FALSE(TuneGrimp(clean, tuner).ok());
  TunerOptions bad_holdout;
  bad_holdout.holdout_fraction = 0.0;
  EXPECT_FALSE(TuneGrimp(clean, bad_holdout).ok());
}

// --- Efficiency knobs -------------------------------------------------------

TEST(EfficiencyTest, NeighborCapBoundsDegrees) {
  auto clean = GenerateDatasetByName("flare", 3, 300);
  ASSERT_TRUE(clean.ok());
  GraphBuildOptions options;
  options.max_neighbors_per_node = 8;
  options.seed = 1;
  const TableGraph tg = BuildTableGraph(*clean, {}, options);
  for (int t = 0; t < tg.graph.num_edge_types(); ++t) {
    for (int64_t v = 0; v < tg.graph.num_nodes(); ++v) {
      EXPECT_LE(tg.graph.adjacency(t).Degree(v), 8);
    }
  }
}

TEST(EfficiencyTest, PrunedAndCappedGrimpStillAccurate) {
  Table clean = StructuredTable(150);
  const CorruptedTable corrupted = InjectMcar(clean, 0.2, 15);
  GrimpOptions options;
  options.dim = 16;
  options.max_epochs = 40;
  options.graph.neighbor_cap = 10;
  options.max_samples_per_task = 60;
  GrimpImputer grimp(options);
  const RunResult rr = RunAlgorithm(clean, corrupted, &grimp);
  ASSERT_TRUE(rr.status.ok());
  // Post-cap count: at most max_samples_per_task per column task.
  EXPECT_LE(grimp.summary().num_train_samples, 60 * clean.num_cols());
  EXPECT_GT(grimp.summary().num_train_samples, 0);
  EXPECT_GT(rr.score.Accuracy(), 0.7);
}

// --- Inductive engine (Fit / Transform) -------------------------------------

TEST(EngineTest, TransformMatchesSchemaChecks) {
  Table source = StructuredTable(100);
  GrimpOptions options;
  options.dim = 16;
  options.max_epochs = 20;
  GrimpEngine engine(options);
  EXPECT_FALSE(engine.Transform(source).ok());  // not fitted yet
  ASSERT_TRUE(engine.Fit(source).ok());
  EXPECT_TRUE(engine.fitted());

  Schema other({{"x", AttrType::kCategorical}});
  Table wrong(other);
  ASSERT_TRUE(wrong.AppendRow({"v"}).ok());
  EXPECT_FALSE(engine.Transform(wrong).ok());
}

TEST(EngineTest, RejectsNonNgramFeatures) {
  GrimpOptions options;
  options.features = FeatureInitKind::kEmbdi;
  GrimpEngine engine(options);
  EXPECT_FALSE(engine.Fit(StructuredTable(30)).ok());
}

TEST(EngineTest, ImputesUnseenTableWithSharedSchema) {
  // Train on one sample of the distribution, impute a *different* sample:
  // the inductive reuse of §7. Shared schema, disjoint rows.
  Table source = StructuredTable(160);
  Table target_clean(source.schema());
  for (int64_t i = 0; i < 80; ++i) {
    const int a = static_cast<int>((i + 1) % 4);  // shifted phase
    ASSERT_TRUE(target_clean
                    .AppendRow({"alpha" + std::to_string(a),
                                "beta" + std::to_string(a % 2),
                                std::to_string(10 * a)})
                    .ok());
  }
  const CorruptedTable corrupted = InjectMcar(target_clean, 0.25, 17);

  GrimpOptions options;
  options.dim = 16;
  options.max_epochs = 60;
  GrimpEngine engine(options);
  ASSERT_TRUE(engine.Fit(source).ok());
  auto imputed = engine.Transform(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  const ImputationScore score =
      ScoreImputation(*imputed, corrupted, target_clean);
  // Zero-shot transfer must beat random guessing (chance ~0.375) clearly.
  EXPECT_GT(score.Accuracy(), 0.6);
  // And every categorical fill must decode to a source-domain value.
  for (const CellRef& cell : corrupted.missing_cells) {
    const Column& col = imputed->column(cell.col);
    if (!col.is_categorical() || col.IsMissing(cell.row)) continue;
    EXPECT_GE(source.column(cell.col).dict().Find(col.StringAt(cell.row)), 0);
  }
}

TEST(EngineTest, TransformOnTrainingTableWorks) {
  Table source = StructuredTable(120);
  const CorruptedTable corrupted = InjectMcar(source, 0.2, 19);
  GrimpOptions options;
  options.dim = 16;
  options.max_epochs = 40;
  GrimpEngine engine(options);
  ASSERT_TRUE(engine.Fit(corrupted.dirty).ok());
  auto imputed = engine.Transform(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  const ImputationScore score = ScoreImputation(*imputed, corrupted, source);
  EXPECT_GT(score.Accuracy(), 0.75);
}

// --- Out-of-core sharded training -----------------------------------------

TEST(EngineTest, ShardedFitMatchesInMemoryAccuracy) {
  Table source = StructuredTable(240);
  const CorruptedTable corrupted = InjectMcar(source, 0.2, 23);

  GrimpOptions base;
  base.dim = 16;
  base.max_epochs = 60;
  base.seed = 5;
  base.train.mode = TrainMode::kSampled;
  base.train.batch_size = 32;
  base.train.fanouts = {4, 4};

  GrimpOptions sharded_options = base;
  sharded_options.graph.shard_mode = ShardMode::kSharded;
  sharded_options.graph.num_shards = 4;
  sharded_options.graph.max_resident_bytes = 1ll << 14;  // force eviction

  const Counter& fetches =
      MetricsRegistry::Global().GetCounter("graph.shard.fetches");
  const int64_t fetches_before = fetches.value();

  GrimpEngine in_memory(base);
  ASSERT_TRUE(in_memory.Fit(corrupted.dirty).ok());
  GrimpEngine sharded(sharded_options);
  ASSERT_TRUE(sharded.Fit(corrupted.dirty).ok());
  // The sharded fit really went through the out-of-core path.
  EXPECT_GT(fetches.value(), fetches_before);

  auto imputed_memory = in_memory.Transform(corrupted.dirty);
  auto imputed_sharded = sharded.Transform(corrupted.dirty);
  ASSERT_TRUE(imputed_memory.ok());
  ASSERT_TRUE(imputed_sharded.ok());
  const double acc_memory =
      ScoreImputation(*imputed_memory, corrupted, source).Accuracy();
  const double acc_sharded =
      ScoreImputation(*imputed_sharded, corrupted, source).Accuracy();
  // Same model, same sampled objective; the stores differ only in where
  // the adjacency lives, so quality must match up to training noise.
  EXPECT_GT(acc_sharded, 0.7);
  EXPECT_NEAR(acc_sharded, acc_memory, 0.15);
}

TEST(EngineTest, ShardedFitRequiresSampledTraining) {
  GrimpOptions options;
  options.dim = 16;
  options.graph.shard_mode = ShardMode::kSharded;  // train.mode stays kFull
  GrimpEngine engine(options);
  const Status status = engine.Fit(StructuredTable(40));
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}


// --- Attention introspection --------------------------------------------------

TEST(AttentionSummaryTest, RowsAreDistributionsOverColumns) {
  Table clean = StructuredTable(120);
  const CorruptedTable corrupted = InjectMcar(clean, 0.3, 23);
  GrimpOptions options;
  options.dim = 16;
  options.max_epochs = 30;
  GrimpEngine engine(options);
  ASSERT_TRUE(engine.Fit(corrupted.dirty).ok());
  auto summary_or = engine.AttentionSummary(corrupted.dirty);
  ASSERT_TRUE(summary_or.ok()) << summary_or.status().ToString();
  const Tensor& summary = *summary_or;
  ASSERT_EQ(summary.rows(), clean.num_cols());
  ASSERT_EQ(summary.cols(), clean.num_cols());
  for (int64_t t = 0; t < summary.rows(); ++t) {
    float row_sum = 0.0f;
    for (int64_t c = 0; c < summary.cols(); ++c) {
      EXPECT_GE(summary.at(t, c), 0.0f);
      row_sum += summary.at(t, c);
    }
    // Tasks with imputed cells have a softmax-normalized mean row.
    if (row_sum > 0.0f) {
      EXPECT_NEAR(row_sum, 1.0f, 1e-4f);
    }
  }
}

TEST(AttentionSummaryTest, RequiresAttentionTasks) {
  Table clean = StructuredTable(40);
  GrimpOptions options;
  options.dim = 8;
  options.max_epochs = 3;
  options.task_kind = TaskKind::kLinear;
  GrimpEngine engine(options);
  ASSERT_TRUE(engine.Fit(clean).ok());
  EXPECT_FALSE(engine.AttentionSummary(clean).ok());
}

}  // namespace
}  // namespace grimp
