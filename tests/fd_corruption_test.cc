#include <gtest/gtest.h>

#include <cmath>

#include "table/corruption.h"
#include "table/fd.h"

namespace grimp {
namespace {

Table MakeFdTable() {
  // zip -> city holds; city -> zip does not.
  Schema schema({{"zip", AttrType::kCategorical},
                 {"city", AttrType::kCategorical},
                 {"pop", AttrType::kNumerical}});
  Table t(schema);
  EXPECT_TRUE(t.AppendRow({"75001", "paris", "100"}).ok());
  EXPECT_TRUE(t.AppendRow({"75002", "paris", "120"}).ok());
  EXPECT_TRUE(t.AppendRow({"00100", "rome", "90"}).ok());
  EXPECT_TRUE(t.AppendRow({"75001", "paris", "100"}).ok());
  EXPECT_TRUE(t.AppendRow({"00100", "rome", "95"}).ok());
  return t;
}

TEST(FdTest, ParseFdResolvesNames) {
  Table t = MakeFdTable();
  auto fd = ParseFd("zip->city", t.schema());
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(fd->lhs, std::vector<int>{0});
  EXPECT_EQ(fd->rhs, 1);
  EXPECT_EQ(fd->ToString(t.schema()), "zip->city");
  auto multi = ParseFd("zip, city -> pop", t.schema());
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->lhs, (std::vector<int>{0, 1}));
  EXPECT_FALSE(ParseFd("zip->nope", t.schema()).ok());
  EXPECT_FALSE(ParseFd("no_arrow", t.schema()).ok());
  EXPECT_FALSE(ParseFd("->city", t.schema()).ok());
}

TEST(FdTest, ViolationRateZeroForHoldingFd) {
  Table t = MakeFdTable();
  FunctionalDependency fd{{0}, 1};
  EXPECT_DOUBLE_EQ(FdViolationRate(t, fd), 0.0);
}

TEST(FdTest, ViolationRatePositiveForBrokenFd) {
  Table t = MakeFdTable();
  // city -> zip: paris maps to {75001 x2, 75002} -> 1 violation out of 3;
  // rome maps to {00100 x2} -> 0 out of 2. Total 1/5.
  FunctionalDependency fd{{1}, 0};
  EXPECT_NEAR(FdViolationRate(t, fd), 0.2, 1e-12);
}

TEST(FdTest, ViolationSkipsMissing) {
  Table t = MakeFdTable();
  t.mutable_column(1).SetMissing(1);
  FunctionalDependency fd{{0}, 1};
  EXPECT_DOUBLE_EQ(FdViolationRate(t, fd), 0.0);
}

TEST(FdTest, DiscoverUnaryFdsFindsZipCity) {
  Table t = MakeFdTable();
  const auto fds = DiscoverUnaryFds(t);
  bool found_zip_city = false;
  bool found_city_zip = false;
  for (const auto& fd : fds) {
    if (fd.lhs == std::vector<int>{0} && fd.rhs == 1) found_zip_city = true;
    if (fd.lhs == std::vector<int>{1} && fd.rhs == 0) found_city_zip = true;
  }
  EXPECT_TRUE(found_zip_city);
  EXPECT_FALSE(found_city_zip);
}

TEST(FdTest, FdAttributeSet) {
  std::vector<FunctionalDependency> fds{{{0}, 1}, {{2}, 1}};
  EXPECT_EQ(FdAttributeSet(fds, 4), (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(FdAttributeSet({}, 4).empty());
}

// --- Corruption --------------------------------------------------------------

TEST(CorruptionTest, McarFractionApproximatesTarget) {
  Schema schema({{"a", AttrType::kCategorical}});
  Table t(schema);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t.AppendRow({"v" + std::to_string(i % 7)}).ok());
  }
  const CorruptedTable corrupted = InjectMcar(t, 0.2, 99);
  EXPECT_NEAR(corrupted.dirty.MissingFraction(), 0.2, 0.02);
  EXPECT_EQ(static_cast<int64_t>(corrupted.missing_cells.size()),
            corrupted.dirty.num_rows() - corrupted.dirty.column(0).NumPresent());
}

TEST(CorruptionTest, GroundTruthMatchesCleanTable) {
  Table t = MakeFdTable();
  const CorruptedTable corrupted = InjectMcar(t, 0.5, 7);
  ASSERT_FALSE(corrupted.missing_cells.empty());
  for (size_t i = 0; i < corrupted.missing_cells.size(); ++i) {
    const CellRef cell = corrupted.missing_cells[i];
    EXPECT_TRUE(corrupted.dirty.IsMissing(cell.row, cell.col));
    EXPECT_FALSE(t.IsMissing(cell.row, cell.col));
    EXPECT_EQ(corrupted.original_codes[i], t.column(cell.col).CodeAt(cell.row));
    if (!t.column(cell.col).is_categorical()) {
      EXPECT_DOUBLE_EQ(corrupted.original_nums[i],
                       t.column(cell.col).NumAt(cell.row));
    } else {
      EXPECT_TRUE(std::isnan(corrupted.original_nums[i]));
    }
  }
}

TEST(CorruptionTest, DeterministicForSeed) {
  Table t = MakeFdTable();
  const CorruptedTable a = InjectMcar(t, 0.4, 5);
  const CorruptedTable b = InjectMcar(t, 0.4, 5);
  ASSERT_EQ(a.missing_cells.size(), b.missing_cells.size());
  for (size_t i = 0; i < a.missing_cells.size(); ++i) {
    EXPECT_TRUE(a.missing_cells[i] == b.missing_cells[i]);
  }
  const CorruptedTable c = InjectMcar(t, 0.4, 6);
  // Different seed should (almost surely) pick different cells.
  bool identical = a.missing_cells.size() == c.missing_cells.size();
  if (identical) {
    for (size_t i = 0; i < a.missing_cells.size(); ++i) {
      identical &= a.missing_cells[i] == c.missing_cells[i];
    }
  }
  EXPECT_FALSE(identical);
}

TEST(CorruptionTest, ZeroFractionIsNoOp) {
  Table t = MakeFdTable();
  const CorruptedTable corrupted = InjectMcar(t, 0.0, 1);
  EXPECT_TRUE(corrupted.missing_cells.empty());
  EXPECT_DOUBLE_EQ(corrupted.dirty.MissingFraction(), 0.0);
}

TEST(CorruptionTest, AlreadyMissingCellsAreNotCounted) {
  Table t = MakeFdTable();
  t.mutable_column(0).SetMissing(0);
  const CorruptedTable corrupted = InjectMcar(t, 0.99, 3);
  for (const CellRef& cell : corrupted.missing_cells) {
    EXPECT_FALSE(cell.row == 0 && cell.col == 0);
  }
}

TEST(CorruptionTest, TyposOnlyTouchCategoricalCells) {
  Table t = MakeFdTable();
  const Table noisy = InjectTypos(t, 1.0, 11);
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    // Every categorical value mutated (longer string), numeric untouched.
    EXPECT_NE(noisy.column(0).StringAt(r), t.column(0).StringAt(r));
    EXPECT_GT(noisy.column(0).StringAt(r).size(),
              t.column(0).StringAt(r).size());
    EXPECT_DOUBLE_EQ(noisy.column(2).NumAt(r), t.column(2).NumAt(r));
  }
  const Table clean_copy = InjectTypos(t, 0.0, 11);
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(clean_copy.column(0).StringAt(r), t.column(0).StringAt(r));
  }
}

}  // namespace
}  // namespace grimp
