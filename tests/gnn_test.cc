#include <gtest/gtest.h>

#include "gnn/hetero_sage.h"
#include "gradcheck.h"
#include "graph/builder.h"
#include "tensor/optimizer.h"

namespace grimp {
namespace {

Table TinyTable() {
  Schema schema({{"a", AttrType::kCategorical},
                 {"b", AttrType::kCategorical}});
  Table t(schema);
  EXPECT_TRUE(t.AppendRow({"x", "p"}).ok());
  EXPECT_TRUE(t.AppendRow({"x", "q"}).ok());
  EXPECT_TRUE(t.AppendRow({"y", ""}).ok());
  return t;
}

TEST(SageSubmoduleTest, OutputShapeAndNeighborMixing) {
  Table t = TinyTable();
  TableGraph tg = BuildTableGraph(t);
  Rng rng(1);
  SageSubmodule sub("s", 4, 3, &rng);
  Tape tape;
  Rng frng(2);
  auto h = tape.Constant(Tensor::GlorotUniform(tg.graph.num_nodes(), 4,
                                               &frng));
  auto out = sub.Forward(&tape, h, tg.graph.adjacency(0));
  EXPECT_EQ(tape.value(out).rows(), tg.graph.num_nodes());
  EXPECT_EQ(tape.value(out).cols(), 3);
}

TEST(HeteroSageLayerTest, MasksNodesUntouchedByType) {
  Table t = TinyTable();
  TableGraph tg = BuildTableGraph(t);
  Rng rng(3);
  HeteroSageLayer layer("l", tg.graph.num_edge_types(), 4, 4, &rng);
  Tape tape;
  Rng frng(4);
  auto h = tape.Constant(Tensor::GlorotUniform(tg.graph.num_nodes(), 4,
                                               &frng));
  auto out = layer.Forward(&tape, h, tg.graph);
  const Tensor& v = tape.value(out);
  // Row 2's "b" cell is missing, so its RID node only participates in edge
  // type 0; output must still be finite and generally nonzero.
  EXPECT_GT(v.SumAbs(), 0.0f);
  // A cell node of column "b" is untouched by type 0 but touched by
  // type 1: its row must be nonzero (type-1 submodule contributes).
  const int32_t q_code = t.column(1).dict().Find("q");
  const int64_t q_node = tg.CellNode(1, q_code);
  float row_abs = 0.0f;
  for (int64_t c = 0; c < v.cols(); ++c) row_abs += std::fabs(v.at(q_node, c));
  EXPECT_GT(row_abs, 0.0f);
}

TEST(HeteroGnnTest, StackShapesAndParameterCount) {
  Table t = TinyTable();
  TableGraph tg = BuildTableGraph(t);
  Rng rng(5);
  HeteroGnn gnn(tg.graph.num_edge_types(), 6, 8, 4, 2, &rng);
  EXPECT_EQ(gnn.num_layers(), 2);
  // Layer 1: per type (2 types): (2*6)*8 + 8; layer 2: (2*8)*4 + 4.
  const int64_t expected =
      2 * ((2 * 6) * 8 + 8) + 2 * ((2 * 8) * 4 + 4);
  EXPECT_EQ(gnn.NumParameters(), expected);
  std::vector<Parameter*> params;
  gnn.CollectParameters(&params);
  EXPECT_EQ(params.size(), 8u);  // 2 layers x 2 types x (W, b)

  Tape tape;
  Rng frng(6);
  auto h = tape.Constant(Tensor::GlorotUniform(tg.graph.num_nodes(), 6,
                                               &frng));
  auto out = gnn.Forward(&tape, h, tg.graph);
  EXPECT_EQ(tape.value(out).rows(), tg.graph.num_nodes());
  EXPECT_EQ(tape.value(out).cols(), 4);
}

TEST(HeteroGnnTest, GradientsFlowToAllParameters) {
  Table t = TinyTable();
  TableGraph tg = BuildTableGraph(t);
  Rng rng(7);
  HeteroGnn gnn(tg.graph.num_edge_types(), 3, 4, 2, 2, &rng);
  std::vector<Parameter*> params;
  gnn.CollectParameters(&params);
  Rng frng(8);
  const Tensor features =
      Tensor::GlorotUniform(tg.graph.num_nodes(), 3, &frng);
  Tape tape;
  auto out = gnn.Forward(&tape, tape.Constant(features), tg.graph);
  auto loss = tape.SumAll(tape.Mul(out, out));
  tape.Backward(loss);
  // Every weight matrix must receive some gradient (biases of masked
  // submodules can be partially zero, weights should not be all-zero).
  for (Parameter* p : params) {
    if (p->value.rows() > 1) {  // weight matrices
      EXPECT_GT(p->grad.SumAbs(), 0.0f) << p->name;
    }
  }
}

TEST(HeteroGnnTest, GradCheckThroughMessagePassing) {
  Table t = TinyTable();
  TableGraph tg = BuildTableGraph(t);
  Rng rng(9);
  HeteroGnn gnn(tg.graph.num_edge_types(), 2, 3, 2, 2, &rng);
  std::vector<Parameter*> params;
  gnn.CollectParameters(&params);
  Rng frng(10);
  const Tensor features =
      Tensor::GlorotUniform(tg.graph.num_nodes(), 2, &frng);
  auto loss = [&](bool) {
    Tape tape;
    auto out = gnn.Forward(&tape, tape.Constant(features), tg.graph);
    auto l = tape.SumAll(tape.Mul(out, out));
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  // Check the first layer's first weight matrix end-to-end.
  EXPECT_LT(testing::MaxGradError(params[0], loss, 1e-2f), 5e-2f);
}

TEST(HeteroGnnTest, TrainingReducesReconstructionLoss) {
  Table t = TinyTable();
  TableGraph tg = BuildTableGraph(t);
  Rng rng(11);
  HeteroGnn gnn(tg.graph.num_edge_types(), 4, 4, 4, 2, &rng);
  std::vector<Parameter*> params;
  gnn.CollectParameters(&params);
  Adam opt(params, 0.01f);
  Rng frng(12);
  const Tensor features =
      Tensor::GlorotUniform(tg.graph.num_nodes(), 4, &frng);
  std::vector<float> targets(static_cast<size_t>(tg.graph.num_nodes()), 1.0f);
  float first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    Tape tape;
    auto out = gnn.Forward(&tape, tape.Constant(features), tg.graph);
    // Predict 1.0 from the first output column of every node.
    auto col = tape.GatherRows(
        tape.Reshape(out, tg.graph.num_nodes() * 4, 1), [&] {
          std::vector<int32_t> idx;
          for (int64_t i = 0; i < tg.graph.num_nodes(); ++i) {
            idx.push_back(static_cast<int32_t>(i * 4));
          }
          return idx;
        }());
    auto loss = tape.MseLoss(col, targets);
    if (step == 0) first = tape.value(loss).scalar();
    last = tape.value(loss).scalar();
    tape.Backward(loss);
    opt.Step();
    opt.ZeroGrad();
  }
  EXPECT_LT(last, first * 0.5f);
}

}  // namespace
}  // namespace grimp
