#ifndef GRIMP_TESTS_GRADCHECK_H_
#define GRIMP_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>

#include "tensor/tape.h"

namespace grimp {
namespace testing {

// Compares the analytic gradient of `loss_fn` w.r.t. `param` against
// central finite differences. `loss_fn` must build a fresh tape each call
// and return the scalar loss value for the current parameter contents.
// Returns the max absolute deviation across parameter entries.
inline float MaxGradError(
    Parameter* param,
    const std::function<float(bool compute_grad)>& loss_fn,
    float epsilon = 1e-3f) {
  param->ZeroGrad();
  loss_fn(/*compute_grad=*/true);
  // Snapshot: the finite-difference evaluations below may run Backward too
  // and keep accumulating into param->grad.
  const Tensor analytic = param->grad;
  float max_err = 0.0f;
  for (int64_t i = 0; i < param->value.size(); ++i) {
    const float saved = param->value[i];
    param->value[i] = saved + epsilon;
    const float up = loss_fn(false);
    param->value[i] = saved - epsilon;
    const float down = loss_fn(false);
    param->value[i] = saved;
    const float numeric = (up - down) / (2.0f * epsilon);
    max_err = std::max(max_err, std::fabs(numeric - analytic[i]));
  }
  param->ZeroGrad();
  return max_err;
}

}  // namespace testing
}  // namespace grimp

#endif  // GRIMP_TESTS_GRADCHECK_H_
