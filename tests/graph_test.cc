#include <gtest/gtest.h>

#include "graph/builder.h"

namespace grimp {
namespace {

Table MakeMovieTable() {
  // The paper's running example shape: values shared across columns must
  // be disambiguated.
  Schema schema({{"year", AttrType::kCategorical},
                 {"country", AttrType::kCategorical},
                 {"title", AttrType::kCategorical}});
  Table t(schema);
  EXPECT_TRUE(t.AppendRow({"2015", "france", "amelie"}).ok());
  EXPECT_TRUE(t.AppendRow({"2014", "france", "2015"}).ok());  // "2015" reused
  EXPECT_TRUE(t.AppendRow({"2015", "", "martian"}).ok());
  return t;
}

TEST(CsrAdjacencyTest, BuildsSortedNeighborLists) {
  CsrAdjacency adj = CsrAdjacency::FromEdges(4, {{0, 2}, {0, 1}, {2, 0}});
  EXPECT_EQ(adj.num_nodes(), 4);
  EXPECT_EQ(adj.num_edges(), 3);
  auto [b, e] = adj.NeighborRange(0);
  ASSERT_EQ(e - b, 2);
  EXPECT_EQ(adj.indices()[static_cast<size_t>(b)], 1);
  EXPECT_EQ(adj.indices()[static_cast<size_t>(b) + 1], 2);
  EXPECT_EQ(adj.Degree(3), 0);
}

TEST(CsrAdjacencyTest, FromPartsRoundTripsThroughReleaseParts) {
  CsrAdjacency built = CsrAdjacency::FromEdges(4, {{0, 2}, {0, 1}, {3, 1}});
  const std::vector<int32_t> want_offsets = built.offsets();
  const std::vector<int32_t> want_indices = built.indices();

  std::vector<int32_t> offsets, indices;
  built.ReleaseParts(&offsets, &indices);
  // The source is drained, the moved-out arrays are intact.
  EXPECT_EQ(built.offsets().size(), 0u);
  EXPECT_EQ(built.indices().size(), 0u);
  EXPECT_EQ(offsets, want_offsets);
  EXPECT_EQ(indices, want_indices);

  // FromParts adopts them verbatim — same neighbor lists, same order.
  const CsrAdjacency rebuilt =
      CsrAdjacency::FromParts(std::move(offsets), std::move(indices));
  EXPECT_EQ(rebuilt.num_nodes(), 4);
  EXPECT_EQ(rebuilt.num_edges(), 3);
  EXPECT_EQ(rebuilt.offsets(), want_offsets);
  EXPECT_EQ(rebuilt.indices(), want_indices);
  EXPECT_EQ(rebuilt.Degree(0), 2);
  EXPECT_EQ(rebuilt.Degree(3), 1);
}

TEST(HeteroGraphTest, UidTracksStructuralChanges) {
  HeteroGraph g;
  g.AddNode(NodeInfo{});
  g.AddNode(NodeInfo{});
  const uint64_t original = g.uid();

  // SetAdjacency changes the structure: caches keyed on uid must miss.
  std::vector<CsrAdjacency> adj;
  adj.push_back(CsrAdjacency::FromEdges(2, {{0, 1}, {1, 0}}));
  g.SetAdjacency(std::move(adj));
  EXPECT_NE(g.uid(), original);
  const uint64_t after_set = g.uid();

  // A copy is a distinct cache key; a move carries the identity along and
  // re-keys the hollowed-out source.
  HeteroGraph copy(g);
  EXPECT_NE(copy.uid(), after_set);
  HeteroGraph moved(std::move(g));
  EXPECT_EQ(moved.uid(), after_set);
  EXPECT_NE(g.uid(), after_set);  // NOLINT(bugprone-use-after-move)
}

TEST(GraphBuilderTest, ReportsTypedErrorsInsteadOfAborting) {
  const Table empty(Schema({{"a", AttrType::kCategorical}}));
  auto no_rows = GraphBuilder().Build(empty);
  ASSERT_FALSE(no_rows.ok());
  EXPECT_EQ(no_rows.status().code(), StatusCode::kInvalidArgument);

  Table t = MakeMovieTable();
  GraphBuildOptions bad;
  bad.max_neighbors_per_node = -1;
  auto bad_cap = GraphBuilder(bad).Build(t);
  ASSERT_FALSE(bad_cap.ok());
  EXPECT_EQ(bad_cap.status().code(), StatusCode::kInvalidArgument);

  auto bad_cell = GraphBuilder().Build(t, {CellRef{99, 0}});
  ASSERT_FALSE(bad_cell.ok());
  EXPECT_EQ(bad_cell.status().code(), StatusCode::kOutOfRange);

  auto ok = GraphBuilder().Build(t);
  EXPECT_TRUE(ok.ok());
}

TEST(GraphBuilderTest, NodeInventory) {
  Table t = MakeMovieTable();
  TableGraph tg = BuildTableGraph(t);
  // 3 RID nodes + distinct values per column: year {2015, 2014} = 2,
  // country {france} = 1, title {amelie, 2015, martian} = 3.
  EXPECT_EQ(tg.graph.num_nodes(), 3 + 2 + 1 + 3);
  EXPECT_EQ(tg.graph.num_edge_types(), 3);
  // RID nodes come first and carry their row index.
  for (int64_t r = 0; r < 3; ++r) {
    EXPECT_EQ(tg.graph.node(tg.rid_nodes[static_cast<size_t>(r)]).kind,
              NodeKind::kRid);
    EXPECT_EQ(tg.graph.node(tg.rid_nodes[static_cast<size_t>(r)]).payload, r);
  }
}

TEST(GraphBuilderTest, ValuesSharedAcrossColumnsGetSeparateNodes) {
  Table t = MakeMovieTable();
  TableGraph tg = BuildTableGraph(t);
  const int32_t year_code = t.column(0).dict().Find("2015");
  const int32_t title_code = t.column(2).dict().Find("2015");
  ASSERT_GE(year_code, 0);
  ASSERT_GE(title_code, 0);
  EXPECT_NE(tg.CellNode(0, year_code), tg.CellNode(2, title_code));
}

TEST(GraphBuilderTest, EdgeCountsMatchPresentCells) {
  Table t = MakeMovieTable();
  TableGraph tg = BuildTableGraph(t);
  // Column 0: 3 present cells -> 6 directed edges; column 1: 2 -> 4;
  // column 2: 3 -> 6.
  EXPECT_EQ(tg.graph.adjacency(0).num_edges(), 6);
  EXPECT_EQ(tg.graph.adjacency(1).num_edges(), 4);
  EXPECT_EQ(tg.graph.adjacency(2).num_edges(), 6);
  EXPECT_EQ(tg.graph.TotalEdges(), 16);
}

TEST(GraphBuilderTest, MissingCellsContributeNoEdges) {
  Table t = MakeMovieTable();
  TableGraph tg = BuildTableGraph(t);
  // Row 2's country is missing: its RID node has no type-1 edges.
  const int64_t rid = tg.rid_nodes[2];
  EXPECT_EQ(tg.graph.adjacency(1).Degree(rid), 0);
  EXPECT_EQ(tg.graph.adjacency(0).Degree(rid), 1);
}

TEST(GraphBuilderTest, ExcludedCellsRemoveEdgesButKeepNodes) {
  Table t = MakeMovieTable();
  // Exclude row 0's country cell (a validation target).
  TableGraph tg = BuildTableGraph(t, {CellRef{0, 1}});
  const int64_t rid0 = tg.rid_nodes[0];
  EXPECT_EQ(tg.graph.adjacency(1).Degree(rid0), 0);
  // The france node still exists (row 1 also has it) with one edge left.
  const int32_t france = t.column(1).dict().Find("france");
  const int64_t france_node = tg.CellNode(1, france);
  ASSERT_GE(france_node, 0);
  EXPECT_EQ(tg.graph.adjacency(1).Degree(france_node), 1);
}

TEST(GraphBuilderTest, EdgesAreBidirectional) {
  Table t = MakeMovieTable();
  TableGraph tg = BuildTableGraph(t);
  for (int type = 0; type < tg.graph.num_edge_types(); ++type) {
    const CsrAdjacency& adj = tg.graph.adjacency(type);
    for (int64_t u = 0; u < tg.graph.num_nodes(); ++u) {
      auto [b, e] = adj.NeighborRange(u);
      for (int32_t k = b; k < e; ++k) {
        const int32_t v = adj.indices()[static_cast<size_t>(k)];
        // u must appear in v's neighbor list.
        auto [vb, ve] = adj.NeighborRange(v);
        bool found = false;
        for (int32_t j = vb; j < ve; ++j) {
          found |= adj.indices()[static_cast<size_t>(j)] ==
                   static_cast<int32_t>(u);
        }
        EXPECT_TRUE(found) << "edge " << u << "->" << v << " not symmetric";
      }
    }
  }
}

TEST(GraphBuilderTest, CellNodePayloadsRoundTrip) {
  Table t = MakeMovieTable();
  TableGraph tg = BuildTableGraph(t);
  for (int c = 0; c < t.num_cols(); ++c) {
    const Dictionary& dict = t.column(c).dict();
    for (int32_t code = 0; code < dict.size(); ++code) {
      if (dict.CountOf(code) <= 0) continue;
      const int64_t node = tg.CellNode(c, code);
      ASSERT_GE(node, 0);
      EXPECT_EQ(tg.graph.node(node).kind, NodeKind::kCell);
      EXPECT_EQ(tg.graph.node(node).attr, c);
      EXPECT_EQ(tg.graph.node(node).payload, code);
    }
  }
  EXPECT_EQ(tg.CellNode(0, -1), -1);
  EXPECT_EQ(tg.CellNode(0, 9999), -1);
}

}  // namespace
}  // namespace grimp
