#include <gtest/gtest.h>

#include "baselines/mean_mode.h"
#include "core/grimp.h"
#include "core/names.h"
#include "data/datasets.h"
#include "eval/metrics.h"
#include "eval/runner.h"

namespace grimp {
namespace {

// Structured table: b and num are functions of a.
Table StructuredTable(int64_t rows) {
  Schema schema({{"a", AttrType::kCategorical},
                 {"b", AttrType::kCategorical},
                 {"num", AttrType::kNumerical}});
  Table t(schema);
  for (int64_t i = 0; i < rows; ++i) {
    const int a = static_cast<int>(i % 4);
    EXPECT_TRUE(t.AppendRow({"a" + std::to_string(a),
                             "b" + std::to_string(a % 2),
                             std::to_string(10 * a)})
                    .ok());
  }
  return t;
}

GrimpOptions FastOptions() {
  GrimpOptions options;
  options.dim = 16;
  options.shared_hidden = 32;
  options.max_epochs = 50;
  options.seed = 21;
  return options;
}

TEST(GrimpTest, FillsEveryMissingCell) {
  Table clean = StructuredTable(80);
  const CorruptedTable corrupted = InjectMcar(clean, 0.3, 1);
  GrimpImputer grimp(FastOptions());
  auto imputed = grimp.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
  EXPECT_GT(grimp.summary().epochs_run, 0);
  EXPECT_GE(grimp.summary().steps_run, grimp.summary().epochs_run);
  EXPECT_GT(grimp.summary().num_parameters, 0);
  EXPECT_GT(grimp.summary().num_train_samples, 0);
  EXPECT_GT(grimp.summary().num_val_samples, 0);
}

TEST(GrimpTest, RecoversDeterministicStructure) {
  Table clean = StructuredTable(120);
  const CorruptedTable corrupted = InjectMcar(clean, 0.2, 2);
  GrimpImputer grimp(FastOptions());
  const RunResult rr = RunAlgorithm(clean, corrupted, &grimp);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_GT(rr.score.Accuracy(), 0.8);
}

TEST(GrimpTest, BeatsModeImputationOnClusteredData) {
  auto clean_or = GenerateDatasetByName("contraceptive", 5, 250);
  ASSERT_TRUE(clean_or.ok());
  const CorruptedTable corrupted = InjectMcar(*clean_or, 0.2, 3);
  GrimpImputer grimp(FastOptions());
  MeanModeImputer mode;
  const RunResult g = RunAlgorithm(*clean_or, corrupted, &grimp);
  const RunResult m = RunAlgorithm(*clean_or, corrupted, &mode);
  ASSERT_TRUE(g.status.ok());
  EXPECT_GT(g.score.Accuracy(), m.score.Accuracy());
}

TEST(GrimpTest, DeterministicForSeed) {
  Table clean = StructuredTable(60);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 4);
  GrimpOptions options = FastOptions();
  options.max_epochs = 15;
  GrimpImputer a(options), b(options);
  auto ia = a.Impute(corrupted.dirty);
  auto ib = b.Impute(corrupted.dirty);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  for (const CellRef& cell : corrupted.missing_cells) {
    EXPECT_EQ(ia->column(cell.col).StringAt(cell.row),
              ib->column(cell.col).StringAt(cell.row));
  }
}

TEST(GrimpTest, NamesReflectConfiguration) {
  GrimpOptions options;
  EXPECT_EQ(GrimpImputer(options).name(), "GRIMP-FT");
  options.features = FeatureInitKind::kEmbdi;
  EXPECT_EQ(GrimpImputer(options).name(), "GRIMP-E");
  options.features = FeatureInitKind::kRandom;
  EXPECT_EQ(GrimpImputer(options).name(), "GRIMP-R");
  options.features = FeatureInitKind::kEmbdi;
  options.task_kind = TaskKind::kLinear;
  EXPECT_EQ(GrimpImputer(options).name(), "GRIMP-E-Lin");
  options.task_kind = TaskKind::kAttention;
  options.multi_task = false;
  EXPECT_EQ(GrimpImputer(options).name(), "GNN-MC");
  options.use_gnn = false;
  EXPECT_EQ(GrimpImputer(options).name(), "EmbDI-MC");
}

TEST(GrimpTest, RejectsEmptyTable) {
  Table empty;
  GrimpImputer grimp(FastOptions());
  EXPECT_FALSE(grimp.Impute(empty).ok());
}

TEST(GrimpOptionsTest, ValidateAcceptsDefaultsAndZeroValidation) {
  EXPECT_TRUE(GrimpOptions{}.Validate().ok());
  GrimpOptions options = FastOptions();
  options.validation_fraction = 0.0;  // "no validation" must stay legal
  EXPECT_TRUE(options.Validate().ok());
}

TEST(GrimpOptionsTest, ValidateRejectsEachBadField) {
  const auto rejects = [](void (*corrupt)(GrimpOptions*)) {
    GrimpOptions options;
    corrupt(&options);
    const Status status = options.Validate();
    EXPECT_FALSE(status.ok());
    return !status.ok();
  };
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->dim = 0; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->dim = -4; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->shared_hidden = 0; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->task_hidden = -1; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->gnn_layers = 0; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->max_epochs = 0; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->patience = -1; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->validation_fraction = -0.1; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->validation_fraction = 1.0; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->learning_rate = 0.0f; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->learning_rate = -1e-3f; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->grad_clip = -1.0f; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->focal_gamma = -0.5f; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->graph.neighbor_cap = -1; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->graph.num_shards = -3; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) {
    o->graph.shard_mode = ShardMode::kSharded;
    o->graph.max_resident_bytes = 0;
  }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->max_samples_per_task = -1; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->num_threads = -2; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) {
    o->k_strategy = KStrategy::kWeakDiagonalFd;  // with empty fds
  }));
  // Minibatch training combos.
  EXPECT_TRUE(rejects([](GrimpOptions* o) { o->train.batch_size = -1; }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) {
    o->train.mode = TrainMode::kSampled;
    o->train.batch_size = 0;
  }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) {
    o->train.mode = TrainMode::kSampled;
    o->use_gnn = false;  // nothing to sample without message passing
  }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) {
    o->train.mode = TrainMode::kSampled;
    o->train.fanouts = {8, 0};  // fanout 0 would silence a layer
  }));
  EXPECT_TRUE(rejects([](GrimpOptions* o) {
    o->train.fanouts = {8};  // size must match gnn_layers (2)
  }));
  // Fanouts are legal in full mode (ignored) as long as they are shaped
  // correctly, and legal in sampled mode when positive.
  GrimpOptions sampled;
  sampled.train.mode = TrainMode::kSampled;
  sampled.train.fanouts = {8, 8};
  EXPECT_TRUE(sampled.Validate().ok());
}

TEST(GrimpOptionsTest, ImputerRejectsShardedStorage) {
  // The one-shot imputer's decode step is a whole-graph forward, which a
  // sharded store cannot serve by design; GrimpEngine owns that regime.
  GrimpOptions options = FastOptions();
  options.train.mode = TrainMode::kSampled;
  options.train.fanouts = {2, 2};
  options.graph.shard_mode = ShardMode::kSharded;
  GrimpImputer grimp(options);
  Table clean = StructuredTable(30);
  const auto result = grimp.Impute(clean);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GrimpOptionsTest, ImputeReturnsInvalidArgumentForBadOptions) {
  GrimpOptions options = FastOptions();
  options.dim = -1;
  GrimpImputer grimp(options);
  Table clean = StructuredTable(30);
  const auto result = grimp.Impute(clean);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GrimpOptionsTest, EnumNamesRoundTripThroughParse) {
  for (TaskKind kind : {TaskKind::kLinear, TaskKind::kAttention}) {
    auto parsed = ParseTaskKind(TaskKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  for (KStrategy strategy :
       {KStrategy::kDiagonal, KStrategy::kTargetColumn,
        KStrategy::kWeakDiagonal, KStrategy::kWeakDiagonalFd}) {
    auto parsed = ParseKStrategy(KStrategyName(strategy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, strategy);
  }
  for (TrainMode mode : {TrainMode::kFull, TrainMode::kSampled}) {
    auto parsed = ParseTrainMode(TrainModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(ParseTaskKind("mlp").ok());
  EXPECT_FALSE(ParseKStrategy("dense").ok());
  EXPECT_FALSE(ParseTrainMode("minibatch").ok());
}

TEST(GrimpTest, CallbacksFireOncePerEpoch) {
  Table clean = StructuredTable(60);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 11);
  GrimpOptions options = FastOptions();
  options.max_epochs = 8;
  std::vector<EpochStats> seen;
  options.callbacks.on_epoch_end = [&seen](const EpochStats& stats) {
    seen.push_back(stats);
    return true;
  };
  GrimpImputer grimp(options);
  ASSERT_TRUE(grimp.Impute(corrupted.dirty).ok());
  ASSERT_EQ(static_cast<int>(seen.size()), grimp.summary().epochs_run);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].epoch, static_cast<int>(i));
    EXPECT_TRUE(seen[i].has_val);
    EXPECT_GT(seen[i].train_loss, 0.0);
    EXPECT_GE(seen[i].seconds, 0.0);
  }
}

TEST(GrimpTest, CallbackCanStopTraining) {
  Table clean = StructuredTable(60);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 12);
  GrimpOptions options = FastOptions();
  options.max_epochs = 40;
  options.callbacks.on_epoch_end = [](const EpochStats& stats) {
    return stats.epoch < 2;  // run epochs 0, 1, 2 then stop
  };
  GrimpImputer grimp(options);
  auto imputed = grimp.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_EQ(grimp.summary().epochs_run, 3);
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
}

TEST(GrimpTest, CallbacksDoNotPerturbResults) {
  Table clean = StructuredTable(60);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 13);
  GrimpOptions options = FastOptions();
  options.max_epochs = 15;
  GrimpImputer plain(options);
  options.callbacks.on_epoch_end = [](const EpochStats&) { return true; };
  GrimpImputer observed(options);
  auto ia = plain.Impute(corrupted.dirty);
  auto ib = observed.Impute(corrupted.dirty);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  for (const CellRef& cell : corrupted.missing_cells) {
    EXPECT_EQ(ia->column(cell.col).StringAt(cell.row),
              ib->column(cell.col).StringAt(cell.row));
  }
}

class GrimpConfigTest : public ::testing::TestWithParam<int> {};

// Every ablation / head / feature configuration must run end-to-end and
// fill all cells.
TEST_P(GrimpConfigTest, RunsEndToEnd) {
  GrimpOptions options = FastOptions();
  options.max_epochs = 10;
  switch (GetParam()) {
    case 0:
      options.task_kind = TaskKind::kLinear;
      break;
    case 1:
      options.use_gnn = false;
      break;
    case 2:
      options.multi_task = false;
      break;
    case 3:
      options.use_gnn = false;
      options.multi_task = false;
      break;
    case 4:
      options.features = FeatureInitKind::kEmbdi;
      break;
    case 5:
      options.features = FeatureInitKind::kRandom;
      break;
    case 6:
      options.k_strategy = KStrategy::kDiagonal;
      break;
    case 7:
      options.k_strategy = KStrategy::kTargetColumn;
      break;
    case 8:
      options.focal_gamma = 2.0f;
      break;
    default:
      break;
  }
  Table clean = StructuredTable(50);
  const CorruptedTable corrupted = InjectMcar(clean, 0.3, 5);
  GrimpImputer grimp(options);
  auto imputed = grimp.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Configs, GrimpConfigTest, ::testing::Range(0, 9));

TEST(GrimpTest, FdStrategyConsumesFds) {
  Table clean = StructuredTable(100);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 6);
  GrimpOptions options = FastOptions();
  options.k_strategy = KStrategy::kWeakDiagonalFd;
  options.fds = {{{0}, 1}};
  GrimpImputer grimp(options);
  EXPECT_EQ(grimp.name(), "GRIMP-FT-A(FD)");
  const RunResult rr = RunAlgorithm(clean, corrupted, &grimp);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_GT(rr.score.Accuracy(), 0.7);
}

TEST(GrimpTest, HighMissingnessStillFillsEverything) {
  Table clean = StructuredTable(100);
  const CorruptedTable corrupted = InjectMcar(clean, 0.5, 7);
  GrimpImputer grimp(FastOptions());
  auto imputed = grimp.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
}

TEST(GrimpTest, RobustToTypos) {
  // §4.2 noise experiment shape: accuracy drops only mildly with typos.
  Table clean = StructuredTable(120);
  const Table noisy = InjectTypos(clean, 0.1, 8);
  const CorruptedTable corrupted = InjectMcar(noisy, 0.1, 9);
  GrimpImputer grimp(FastOptions());
  const RunResult rr = RunAlgorithm(noisy, corrupted, &grimp);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_GT(rr.score.Accuracy(), 0.6);
}

}  // namespace
}  // namespace grimp
