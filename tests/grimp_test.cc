#include <gtest/gtest.h>

#include "baselines/mean_mode.h"
#include "core/grimp.h"
#include "data/datasets.h"
#include "eval/metrics.h"
#include "eval/runner.h"

namespace grimp {
namespace {

// Structured table: b and num are functions of a.
Table StructuredTable(int64_t rows) {
  Schema schema({{"a", AttrType::kCategorical},
                 {"b", AttrType::kCategorical},
                 {"num", AttrType::kNumerical}});
  Table t(schema);
  for (int64_t i = 0; i < rows; ++i) {
    const int a = static_cast<int>(i % 4);
    EXPECT_TRUE(t.AppendRow({"a" + std::to_string(a),
                             "b" + std::to_string(a % 2),
                             std::to_string(10 * a)})
                    .ok());
  }
  return t;
}

GrimpOptions FastOptions() {
  GrimpOptions options;
  options.dim = 16;
  options.shared_hidden = 32;
  options.max_epochs = 50;
  options.seed = 21;
  return options;
}

TEST(GrimpTest, FillsEveryMissingCell) {
  Table clean = StructuredTable(80);
  const CorruptedTable corrupted = InjectMcar(clean, 0.3, 1);
  GrimpImputer grimp(FastOptions());
  auto imputed = grimp.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
  EXPECT_GT(grimp.report().epochs_run, 0);
  EXPECT_GT(grimp.report().num_parameters, 0);
  EXPECT_GT(grimp.report().num_train_samples, 0);
  EXPECT_GT(grimp.report().num_val_samples, 0);
}

TEST(GrimpTest, RecoversDeterministicStructure) {
  Table clean = StructuredTable(120);
  const CorruptedTable corrupted = InjectMcar(clean, 0.2, 2);
  GrimpImputer grimp(FastOptions());
  const RunResult rr = RunAlgorithm(clean, corrupted, &grimp);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_GT(rr.score.Accuracy(), 0.8);
}

TEST(GrimpTest, BeatsModeImputationOnClusteredData) {
  auto clean_or = GenerateDatasetByName("contraceptive", 5, 250);
  ASSERT_TRUE(clean_or.ok());
  const CorruptedTable corrupted = InjectMcar(*clean_or, 0.2, 3);
  GrimpImputer grimp(FastOptions());
  MeanModeImputer mode;
  const RunResult g = RunAlgorithm(*clean_or, corrupted, &grimp);
  const RunResult m = RunAlgorithm(*clean_or, corrupted, &mode);
  ASSERT_TRUE(g.status.ok());
  EXPECT_GT(g.score.Accuracy(), m.score.Accuracy());
}

TEST(GrimpTest, DeterministicForSeed) {
  Table clean = StructuredTable(60);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 4);
  GrimpOptions options = FastOptions();
  options.max_epochs = 15;
  GrimpImputer a(options), b(options);
  auto ia = a.Impute(corrupted.dirty);
  auto ib = b.Impute(corrupted.dirty);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  for (const CellRef& cell : corrupted.missing_cells) {
    EXPECT_EQ(ia->column(cell.col).StringAt(cell.row),
              ib->column(cell.col).StringAt(cell.row));
  }
}

TEST(GrimpTest, NamesReflectConfiguration) {
  GrimpOptions options;
  EXPECT_EQ(GrimpImputer(options).name(), "GRIMP-FT");
  options.features = FeatureInitKind::kEmbdi;
  EXPECT_EQ(GrimpImputer(options).name(), "GRIMP-E");
  options.features = FeatureInitKind::kRandom;
  EXPECT_EQ(GrimpImputer(options).name(), "GRIMP-R");
  options.features = FeatureInitKind::kEmbdi;
  options.task_kind = TaskKind::kLinear;
  EXPECT_EQ(GrimpImputer(options).name(), "GRIMP-E-Lin");
  options.task_kind = TaskKind::kAttention;
  options.multi_task = false;
  EXPECT_EQ(GrimpImputer(options).name(), "GNN-MC");
  options.use_gnn = false;
  EXPECT_EQ(GrimpImputer(options).name(), "EmbDI-MC");
}

TEST(GrimpTest, RejectsEmptyTable) {
  Table empty;
  GrimpImputer grimp(FastOptions());
  EXPECT_FALSE(grimp.Impute(empty).ok());
}

class GrimpConfigTest : public ::testing::TestWithParam<int> {};

// Every ablation / head / feature configuration must run end-to-end and
// fill all cells.
TEST_P(GrimpConfigTest, RunsEndToEnd) {
  GrimpOptions options = FastOptions();
  options.max_epochs = 10;
  switch (GetParam()) {
    case 0:
      options.task_kind = TaskKind::kLinear;
      break;
    case 1:
      options.use_gnn = false;
      break;
    case 2:
      options.multi_task = false;
      break;
    case 3:
      options.use_gnn = false;
      options.multi_task = false;
      break;
    case 4:
      options.features = FeatureInitKind::kEmbdi;
      break;
    case 5:
      options.features = FeatureInitKind::kRandom;
      break;
    case 6:
      options.k_strategy = KStrategy::kDiagonal;
      break;
    case 7:
      options.k_strategy = KStrategy::kTargetColumn;
      break;
    case 8:
      options.focal_gamma = 2.0f;
      break;
    default:
      break;
  }
  Table clean = StructuredTable(50);
  const CorruptedTable corrupted = InjectMcar(clean, 0.3, 5);
  GrimpImputer grimp(options);
  auto imputed = grimp.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Configs, GrimpConfigTest, ::testing::Range(0, 9));

TEST(GrimpTest, FdStrategyConsumesFds) {
  Table clean = StructuredTable(100);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 6);
  GrimpOptions options = FastOptions();
  options.k_strategy = KStrategy::kWeakDiagonalFd;
  options.fds = {{{0}, 1}};
  GrimpImputer grimp(options);
  EXPECT_EQ(grimp.name(), "GRIMP-FT-A(FD)");
  const RunResult rr = RunAlgorithm(clean, corrupted, &grimp);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_GT(rr.score.Accuracy(), 0.7);
}

TEST(GrimpTest, HighMissingnessStillFillsEverything) {
  Table clean = StructuredTable(100);
  const CorruptedTable corrupted = InjectMcar(clean, 0.5, 7);
  GrimpImputer grimp(FastOptions());
  auto imputed = grimp.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
}

TEST(GrimpTest, RobustToTypos) {
  // §4.2 noise experiment shape: accuracy drops only mildly with typos.
  Table clean = StructuredTable(120);
  const Table noisy = InjectTypos(clean, 0.1, 8);
  const CorruptedTable corrupted = InjectMcar(noisy, 0.1, 9);
  GrimpImputer grimp(FastOptions());
  const RunResult rr = RunAlgorithm(noisy, corrupted, &grimp);
  ASSERT_TRUE(rr.status.ok());
  EXPECT_GT(rr.score.Accuracy(), 0.6);
}

}  // namespace
}  // namespace grimp
