#include <gtest/gtest.h>

#include "baselines/mean_mode.h"
#include "baselines/missforest.h"
#include "baselines/zoo.h"
#include "core/grimp.h"
#include "data/datasets.h"
#include "eval/error_analysis.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "table/stats.h"

namespace grimp {
namespace {

// A miniature replica of the paper's Figure-8 protocol on one dataset:
// generate, corrupt with MCAR, run several algorithms on the *same* dirty
// table, score against ground truth.
TEST(IntegrationTest, MiniFigure8Protocol) {
  auto clean_or = GenerateDatasetByName("mammogram", 13, 200);
  ASSERT_TRUE(clean_or.ok());
  const Table& clean = *clean_or;
  const CorruptedTable corrupted = InjectMcar(clean, 0.2, 17);

  GrimpOptions go;
  go.dim = 16;
  go.max_epochs = 40;
  GrimpImputer grimp(go);
  MissForestImputer misf;
  MeanModeImputer mode;

  const RunResult g = RunAlgorithm(clean, corrupted, &grimp);
  const RunResult f = RunAlgorithm(clean, corrupted, &misf);
  const RunResult m = RunAlgorithm(clean, corrupted, &mode);
  ASSERT_TRUE(g.status.ok());
  ASSERT_TRUE(f.status.ok());
  ASSERT_TRUE(m.status.ok());

  // All algorithms scored on the same cells.
  EXPECT_EQ(g.score.categorical_cells, f.score.categorical_cells);
  EXPECT_EQ(g.score.categorical_cells, m.score.categorical_cells);

  // Learned methods beat the mode baseline on clustered data.
  EXPECT_GT(g.score.Accuracy(), m.score.Accuracy());
  EXPECT_GT(f.score.Accuracy(), m.score.Accuracy());
}

TEST(IntegrationTest, ErrorAnalysisShowsRareValueWeakness) {
  // §5 shape: all algorithms err more on rare values than frequent ones.
  auto clean_or = GenerateDatasetByName("thoracic", 29, 250);
  ASSERT_TRUE(clean_or.ok());
  const Table& clean = *clean_or;
  const CorruptedTable corrupted = InjectMcar(clean, 0.3, 31);
  MissForestImputer misf;
  Table imputed;
  const RunResult rr = RunAlgorithm(clean, corrupted, &misf, &imputed);
  ASSERT_TRUE(rr.status.ok());

  // Aggregate over the binary columns: error rate on each column's most
  // frequent value vs its rarest value.
  double frequent_err = 0.0, rare_err = 0.0;
  int counted = 0;
  for (int c = 0; c < clean.num_cols(); ++c) {
    if (!clean.column(c).is_categorical()) continue;
    const auto rows = AnalyzeValueErrors(clean, corrupted, imputed, c);
    if (rows.size() < 2) continue;
    if (rows.front().test_cells == 0 || rows.back().test_cells == 0) continue;
    frequent_err += rows.front().ErrorFraction();
    rare_err += rows.back().ErrorFraction();
    ++counted;
  }
  ASSERT_GT(counted, 3);
  EXPECT_LT(frequent_err / counted, rare_err / counted);
}

TEST(IntegrationTest, MetricsCorrelateWithDifficultyAcrossDatasets) {
  // §5: datasets whose columns are dominated by few frequent values
  // (high F+) are easier for a frequency-based imputer than uniform ones.
  auto easy = GenerateDatasetByName("flare", 7, 250);
  auto hard = GenerateDatasetByName("tictactoe", 7, 250);
  ASSERT_TRUE(easy.ok());
  ASSERT_TRUE(hard.ok());
  MeanModeImputer mode;
  const RunResult easy_run =
      RunAlgorithm(*easy, InjectMcar(*easy, 0.3, 41), &mode);
  const RunResult hard_run =
      RunAlgorithm(*hard, InjectMcar(*hard, 0.3, 41), &mode);
  EXPECT_GT(easy_run.score.Accuracy(), hard_run.score.Accuracy());
  const TableStats easy_stats = ComputeTableStats(*easy);
  const TableStats hard_stats = ComputeTableStats(*hard);
  EXPECT_GT(easy_stats.frequent_frac_avg, hard_stats.frequent_frac_avg);
}

TEST(IntegrationTest, GrimpHandlesTuplesWithMultipleMissingValues) {
  // Fig. 5 scenario: the same masked training vector must produce
  // different imputations for different attributes.
  Schema schema({{"cntr", AttrType::kCategorical},
                 {"city", AttrType::kCategorical},
                 {"lang", AttrType::kCategorical}});
  Table clean(schema);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(clean
                    .AppendRow(i % 2 == 0
                                   ? std::vector<std::string>{"france",
                                                              "paris", "fr"}
                                   : std::vector<std::string>{"italy", "rome",
                                                              "it"})
                    .ok());
  }
  // Blank both cntr and city of some rows: the imputation input vectors
  // for those two tasks are identical.
  CorruptedTable corrupted;
  corrupted.dirty = clean;
  for (int64_t r = 0; r < 10; ++r) {
    corrupted.dirty.mutable_column(0).SetMissing(r);
    corrupted.dirty.mutable_column(1).SetMissing(r);
    corrupted.missing_cells.push_back(CellRef{r, 0});
    corrupted.missing_cells.push_back(CellRef{r, 1});
  }
  GrimpOptions go;
  go.dim = 16;
  go.max_epochs = 40;
  go.seed = 3;
  GrimpImputer grimp(go);
  auto imputed = grimp.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  const ImputationScore score = ScoreImputation(*imputed, corrupted, clean);
  // Both attributes recoverable from lang alone; the per-attribute tasks
  // must fill them with values from their own domains.
  EXPECT_GT(score.Accuracy(), 0.8);
  for (int64_t r = 0; r < 10; ++r) {
    const std::string cntr = imputed->column(0).StringAt(r);
    const std::string city = imputed->column(1).StringAt(r);
    EXPECT_TRUE(cntr == "france" || cntr == "italy") << cntr;
    EXPECT_TRUE(city == "paris" || city == "rome") << city;
  }
}

TEST(IntegrationTest, SuiteRunsOnTinySliceOfEveryDataset) {
  // Smoke: every algorithm of the comparison suite completes on a tiny
  // slice of every dataset at 20% missingness.
  ZooOptions zoo;
  zoo.grimp_epochs = 5;
  zoo.grimp_dim = 8;
  zoo.aimnet_epochs = 5;
  zoo.datawig_epochs = 5;
  zoo.forest_trees = 4;
  for (const std::string& name : {"credit", "tictactoe"}) {
    auto clean = GenerateDatasetByName(name, 3, 60);
    ASSERT_TRUE(clean.ok()) << name;
    const CorruptedTable corrupted = InjectMcar(*clean, 0.2, 5);
    const auto suite = MakeComparisonSuite(zoo);
    for (const auto& algo : suite) {
      const RunResult rr = RunAlgorithm(*clean, corrupted, algo.get());
      EXPECT_TRUE(rr.status.ok())
          << name << "/" << algo->name() << ": " << rr.status.ToString();
    }
  }
}

}  // namespace
}  // namespace grimp
