// Cross-cutting invariants of every imputer: filled values must come from
// the attribute's live domain, numeric outputs must be finite, present
// cells must never change, and re-running with the same seed must be
// byte-identical. Run as parameterized sweeps over algorithms x datasets.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/knn.h"
#include "baselines/mean_mode.h"
#include "baselines/missforest.h"
#include "baselines/turl_proxy.h"
#include "baselines/zoo.h"
#include "core/grimp.h"
#include "data/datasets.h"

namespace grimp {
namespace {

enum class Algo { kGrimp, kMissForest, kKnn, kMeanMode, kTurl };

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kGrimp:
      return "grimp";
    case Algo::kMissForest:
      return "missforest";
    case Algo::kKnn:
      return "knn";
    case Algo::kMeanMode:
      return "meanmode";
    case Algo::kTurl:
      return "turl";
  }
  return "?";
}

std::unique_ptr<ImputationAlgorithm> Make(Algo algo) {
  switch (algo) {
    case Algo::kGrimp: {
      GrimpOptions go;
      go.dim = 8;
      go.max_epochs = 6;
      return std::make_unique<GrimpImputer>(go);
    }
    case Algo::kMissForest: {
      MissForestOptions mo;
      mo.forest.num_trees = 4;
      mo.max_iterations = 2;
      return std::make_unique<MissForestImputer>(mo);
    }
    case Algo::kKnn:
      return std::make_unique<KnnImputer>(3);
    case Algo::kMeanMode:
      return std::make_unique<MeanModeImputer>();
    case Algo::kTurl:
      return std::make_unique<TurlProxyImputer>();
  }
  return nullptr;
}

struct Case {
  Algo algo;
  std::string dataset;
};

class ImputerInvariantTest : public ::testing::TestWithParam<Case> {};

TEST_P(ImputerInvariantTest, DomainFinitenessAndStability) {
  const Case& c = GetParam();
  auto clean_or = GenerateDatasetByName(c.dataset, 3, 80);
  ASSERT_TRUE(clean_or.ok());
  const CorruptedTable corrupted = InjectMcar(*clean_or, 0.25, 7);
  const Table& dirty = corrupted.dirty;

  auto algo = Make(c.algo);
  auto imputed_or = algo->Impute(dirty);
  ASSERT_TRUE(imputed_or.ok()) << imputed_or.status().ToString();
  const Table& imputed = *imputed_or;

  for (int col = 0; col < dirty.num_cols(); ++col) {
    const Column& dirty_col = dirty.column(col);
    const Column& imp_col = imputed.column(col);
    for (int64_t r = 0; r < dirty.num_rows(); ++r) {
      if (!dirty_col.IsMissing(r)) {
        // Present cells never change.
        ASSERT_EQ(imp_col.StringAt(r), dirty_col.StringAt(r))
            << c.dataset << " col " << col << " row " << r;
        continue;
      }
      if (imp_col.IsMissing(r)) continue;  // FD-repair-style partial fill OK
      if (dirty_col.is_categorical()) {
        // Filled categorical cells come from the dirty table's live domain.
        const int32_t code = dirty_col.dict().Find(imp_col.StringAt(r));
        ASSERT_GE(code, 0) << "value '" << imp_col.StringAt(r)
                           << "' not in live domain";
        ASSERT_GT(dirty_col.dict().CountOf(code), 0);
      } else {
        ASSERT_TRUE(std::isfinite(imp_col.NumAt(r)));
      }
    }
  }

  // Rerun: identical output (all imputers are seed-deterministic).
  auto algo2 = Make(c.algo);
  auto imputed2 = algo2->Impute(dirty);
  ASSERT_TRUE(imputed2.ok());
  for (int col = 0; col < dirty.num_cols(); ++col) {
    for (int64_t r = 0; r < dirty.num_rows(); ++r) {
      ASSERT_EQ(imputed.column(col).StringAt(r),
                imputed2->column(col).StringAt(r));
    }
  }
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (Algo algo : {Algo::kGrimp, Algo::kMissForest, Algo::kKnn,
                    Algo::kMeanMode, Algo::kTurl}) {
    for (const char* ds : {"mammogram", "tictactoe", "australian"}) {
      cases.push_back(Case{algo, ds});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ImputerInvariantTest,
                         ::testing::ValuesIn(AllCases()),
                         [](const auto& info) {
                           return std::string(AlgoName(info.param.algo)) +
                                  "_" + info.param.dataset;
                         });

// GRIMP-specific: imputing an already-complete table is a no-op.
TEST(ImputerInvariantTest, CompleteTableIsNoOp) {
  auto clean_or = GenerateDatasetByName("mammogram", 3, 60);
  ASSERT_TRUE(clean_or.ok());
  GrimpOptions go;
  go.dim = 8;
  go.max_epochs = 3;
  GrimpImputer grimp(go);
  auto imputed = grimp.Impute(*clean_or);
  ASSERT_TRUE(imputed.ok());
  for (int col = 0; col < clean_or->num_cols(); ++col) {
    for (int64_t r = 0; r < clean_or->num_rows(); ++r) {
      EXPECT_EQ(imputed->column(col).StringAt(r),
                clean_or->column(col).StringAt(r));
    }
  }
}

// Missingness monotonicity: an imputed table has no missing cells left
// (for the total-coverage imputers), at any corruption level.
class CoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(CoverageTest, EveryCellFilledAtAnyRate) {
  auto clean_or = GenerateDatasetByName("credit", 5, 80);
  ASSERT_TRUE(clean_or.ok());
  const CorruptedTable corrupted = InjectMcar(*clean_or, GetParam(), 11);
  for (Algo algo : {Algo::kGrimp, Algo::kMissForest, Algo::kKnn,
                    Algo::kMeanMode}) {
    auto imputed = Make(algo)->Impute(corrupted.dirty);
    ASSERT_TRUE(imputed.ok()) << AlgoName(algo);
    EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0)
        << AlgoName(algo) << " at rate " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, CoverageTest,
                         ::testing::Values(0.05, 0.2, 0.5, 0.7));

}  // namespace
}  // namespace grimp
