#include <gtest/gtest.h>

#include "common/logging.h"

namespace grimp {
namespace {

TEST(LoggingTest, LevelThresholdRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These must be cheap no-ops below the threshold.
  for (int i = 0; i < 100; ++i) {
    GRIMP_LOG(Debug) << "suppressed " << i;
    GRIMP_LOG(Info) << "also suppressed" << 3.14;
  }
  SetLogLevel(original);
}

TEST(LoggingTest, CheckMacrosPassOnTrueConditions) {
  GRIMP_CHECK(true) << "never shown";
  GRIMP_CHECK_EQ(2 + 2, 4);
  GRIMP_CHECK_NE(1, 2);
  GRIMP_CHECK_LT(1, 2);
  GRIMP_CHECK_LE(2, 2);
  GRIMP_CHECK_GT(3, 2);
  GRIMP_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ GRIMP_CHECK(false) << "boom"; }, "Check failed");
  EXPECT_DEATH({ GRIMP_CHECK_EQ(1, 2); }, "Check failed");
}

TEST(LoggingTest, ParseLogLevelAcceptsKnownNamesCaseInsensitively) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(LoggingTest, ParseLogLevelRejectsUnknownNamesUntouched) {
  LogLevel level = LogLevel::kWarning;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
}

TEST(LoggingTest, MonotonicSecondsIsNonDecreasing) {
  const double a = MonotonicSeconds();
  const double b = MonotonicSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(LoggingTest, DcheckCompilesInBothModes) {
  // In release builds GRIMP_DCHECK is a no-op; in debug it must pass here.
  GRIMP_DCHECK(1 + 1 == 2);
  SUCCEED();
}

}  // namespace
}  // namespace grimp
