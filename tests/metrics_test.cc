#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/trace.h"

namespace grimp {
namespace {

// All tests share the process-global registry, so each uses its own metric
// names (and Reset() only where the test owns every name it touches).

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, BucketIndexLog2Scale) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(0.99), 0);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 1);
  EXPECT_EQ(Histogram::BucketIndex(1.99), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 2);
  EXPECT_EQ(Histogram::BucketIndex(1024.0), 11);
  // NaN and huge values stay in range.
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1.0);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 8.0);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, RecordsCountSumMinMax) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.min(), 0.0);  // empty histogram reports 0
  EXPECT_EQ(hist.max(), 0.0);
  hist.Record(4.0);
  hist.Record(0.5);
  hist.Record(100.0);
  EXPECT_EQ(hist.count(), 3);
  EXPECT_DOUBLE_EQ(hist.sum(), 104.5);
  EXPECT_DOUBLE_EQ(hist.min(), 0.5);
  EXPECT_DOUBLE_EQ(hist.max(), 100.0);
  EXPECT_EQ(hist.bucket_count(Histogram::BucketIndex(0.5)), 1);
  EXPECT_EQ(hist.bucket_count(Histogram::BucketIndex(4.0)), 1);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.min(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
}

TEST(SeriesTest, AppendsInOrder) {
  Series series;
  series.Append(1.0);
  series.Append(2.0);
  series.Append(3.0);
  EXPECT_EQ(series.size(), 3);
  EXPECT_EQ(series.Snapshot(), (std::vector<double>{1.0, 2.0, 3.0}));
  series.Reset();
  EXPECT_EQ(series.size(), 0);
}

TEST(MetricsRegistryTest, GetReturnsStableReferences) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("test.registry.stable");
  Counter& b = registry.GetCounter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1);
  // Registering other metrics must not move the first one.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("test.registry.fill." + std::to_string(i));
  }
  EXPECT_EQ(&registry.GetCounter("test.registry.stable"), &a);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesUnderThreadPool) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test.concurrent.counter");
  Histogram& hist = registry.GetHistogram("test.concurrent.hist");
  counter.Reset();
  hist.Reset();

  ThreadPool pool(4);
  constexpr int64_t kN = 100000;
  pool.ParallelFor(0, kN, 1000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      counter.Increment();
      hist.Record(static_cast<double>(i % 128));
    }
  });

  EXPECT_EQ(counter.value(), kN);
  EXPECT_EQ(hist.count(), kN);
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), 127.0);
  int64_t bucket_total = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    bucket_total += hist.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, kN);
}

TEST(TraceSpanTest, RecordsOnScopeExit) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const SpanStats before = registry.GetSpanStats("test.span.scope");
  { GRIMP_TRACE_SPAN("test.span.scope"); }
  const SpanStats after = registry.GetSpanStats("test.span.scope");
  EXPECT_EQ(after.count, before.count + 1);
  EXPECT_GE(after.total_seconds, before.total_seconds);
}

TEST(TraceSpanTest, StopRecordsOnceAndDisarmsDestructor) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  {
    TraceSpan span("test.span.stop");
    const double first = span.Stop();
    EXPECT_GE(first, 0.0);
    // Second Stop and the destructor must not record again.
    EXPECT_EQ(span.Stop(), first);
  }
  EXPECT_EQ(registry.GetSpanStats("test.span.stop").count, 1);
}

TEST(TraceSpanTest, NestedSpansAggregateIndependently) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  {
    GRIMP_TRACE_SPAN("test.span.outer");
    {
      GRIMP_TRACE_SPAN("test.span.inner");
      { GRIMP_TRACE_SPAN("test.span.inner"); }  // same name, nested again
    }
  }
  EXPECT_EQ(registry.GetSpanStats("test.span.outer").count, 1);
  EXPECT_EQ(registry.GetSpanStats("test.span.inner").count, 2);
  // The outer span covers the inner ones.
  EXPECT_GE(registry.GetSpanStats("test.span.outer").total_seconds,
            registry.GetSpanStats("test.span.inner").max_seconds);
}

TEST(MetricsRegistryTest, SpanStatsTrackMinMax) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.RecordSpan("test.span.minmax", 2.0);
  registry.RecordSpan("test.span.minmax", 0.5);
  registry.RecordSpan("test.span.minmax", 1.0);
  const SpanStats stats = registry.GetSpanStats("test.span.minmax");
  EXPECT_EQ(stats.count, 3);
  EXPECT_DOUBLE_EQ(stats.total_seconds, 3.5);
  EXPECT_DOUBLE_EQ(stats.min_seconds, 0.5);
  EXPECT_DOUBLE_EQ(stats.max_seconds, 2.0);
  EXPECT_EQ(registry.GetSpanStats("test.span.never-ran").count, 0);
}

// Minimal structural JSON check: balanced braces/brackets outside strings,
// all five sections present, no raw inf/nan tokens.
void CheckJsonShape(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  for (const char* section :
       {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"series\"",
        "\"spans\""}) {
    EXPECT_NE(json.find(section), std::string::npos) << section;
  }
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf,"), std::string::npos);  // "inf" only as string
}

TEST(MetricsRegistryTest, ToJsonRoundTrip) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json.counter\"quoted\"").Increment(7);
  registry.GetGauge("test.json.gauge").Set(2.5);
  Histogram& hist = registry.GetHistogram("test.json.hist");
  hist.Record(3.0);
  hist.Record(1e30);  // lands in a high bucket; sum must stay finite text
  registry.GetSeries("test.json.series").Append(0.125);
  registry.RecordSpan("test.json.span", 0.25);

  const std::string json = registry.ToJson();
  CheckJsonShape(json);
  EXPECT_NE(json.find("\"test.json.counter\\\"quoted\\\"\": 7"),
            std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.series\": [0.125]"), std::string::npos);
  EXPECT_NE(json.find("test.json.span"), std::string::npos);
}

TEST(MetricsRegistryTest, WriteJsonCreatesParseableFile) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.write.counter").Increment();
  const std::string path = ::testing::TempDir() + "metrics_test_out.json";
  ASSERT_TRUE(registry.WriteJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  CheckJsonShape(content);
  EXPECT_NE(content.find("test.write.counter"), std::string::npos);
  EXPECT_FALSE(registry.WriteJson("/nonexistent-dir/x/y.json").ok());
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("test.reset.counter");
  counter.Increment(5);
  registry.RecordSpan("test.reset.span", 1.0);
  registry.Reset();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(registry.GetSpanStats("test.reset.span").count, 0);
  // The reference survives Reset and keeps working.
  counter.Increment();
  EXPECT_EQ(registry.GetCounter("test.reset.counter").value(), 1);
}

}  // namespace
}  // namespace grimp
