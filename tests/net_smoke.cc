// Socket-server smoke for ctest: fits a tiny model in-process, serves it
// over real loopback TCP, and drives it with concurrent clients — repeated
// hot rows (cache hits), distinct rows (misses), one malformed frame per
// client (typed error). Exits non-zero if any client sees a wrong or
// missing response. Run with GRIMP_METRICS_JSON set, the atexit dump gives
// check_net_metrics.cmake the serve.net.* / serve.cache.* counters to
// assert against.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "net/net_server.h"
#include "net/socket.h"
#include "serve/model_registry.h"
#include "serve/server.h"

namespace {

using grimp::AttrType;
using grimp::GrimpEngine;
using grimp::GrimpOptions;
using grimp::ImputationServer;
using grimp::ModelRegistry;
using grimp::NetServer;
using grimp::NetServerOptions;
using grimp::Schema;
using grimp::ServerOptions;
using grimp::Table;
using grimp::TcpClient;

constexpr int kClients = 8;
constexpr int kRoundsPerClient = 8;

Table TinyTable() {
  Schema schema({{"color", AttrType::kCategorical},
                 {"size", AttrType::kCategorical},
                 {"price", AttrType::kNumerical}});
  Table t(schema);
  for (int i = 0; i < 6; ++i) {
    if (!t.AppendRow({"red", "small", "1"}).ok()) std::abort();
    if (!t.AppendRow({"blue", "large", "9"}).ok()) std::abort();
  }
  return t;
}

}  // namespace

int main() {
  GrimpOptions options;
  options.dim = 8;
  options.shared_hidden = 16;
  options.task_hidden = 16;
  options.max_epochs = 8;
  options.validation_fraction = 0.0;
  options.seed = 42;
  auto engine = std::make_unique<GrimpEngine>(options);
  if (!engine->Fit(TinyTable()).ok()) {
    std::fprintf(stderr, "net_smoke: fit failed\n");
    return 1;
  }
  ModelRegistry registry;
  if (!registry.Add("demo", "1", std::move(engine)).ok()) {
    std::fprintf(stderr, "net_smoke: registry add failed\n");
    return 1;
  }

  ServerOptions server_options;
  server_options.cache.capacity = 64;
  server_options.scheduler.max_batch = 4;
  server_options.scheduler.num_workers = 2;
  ImputationServer server(&registry, server_options);
  NetServer net(&server, NetServerOptions{});
  if (auto status = net.Start(); !status.ok()) {
    std::fprintf(stderr, "net_smoke: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("net_smoke: listening on 127.0.0.1:%d\n", net.port());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = TcpClient::Connect("127.0.0.1", net.port());
      if (!client.ok()) {
        std::fprintf(stderr, "net_smoke: client %d connect: %s\n", c,
                     client.status().ToString().c_str());
        failures++;
        return;
      }
      for (int round = 0; round < kRoundsPerClient; ++round) {
        // One hot row shared by every client, one row unique to (c, round),
        // one malformed frame.
        const std::string hot = R"({"color":"red","size":null,"price":"1"})";
        const std::string cold =
            std::string(R"({"color":"blue","size":null,"price":")") +
            std::to_string(100 + c * kRoundsPerClient + round) + "\"}";
        const struct {
          const std::string& line;
          const char* want;
        } calls[] = {{hot, "\"ok\":true"},
                     {cold, "\"ok\":true"},
                     {hot, "\"ok\":false"}};
        for (int k = 0; k < 3; ++k) {
          const std::string& line = k == 2 ? "not json" : calls[k].line;
          if (!client->SendLine(line).ok()) {
            failures++;
            continue;
          }
          auto response = client->RecvLine();
          if (!response.ok() ||
              response->find(calls[k].want) == std::string::npos) {
            std::fprintf(stderr, "net_smoke: client %d bad response: %s\n", c,
                         response.ok() ? response->c_str()
                                       : response.status().ToString().c_str());
            failures++;
          }
        }
      }
      client->ShutdownWrite();
      if (client->RecvLine().ok()) {  // server must close after the drain
        std::fprintf(stderr, "net_smoke: client %d: no EOF after drain\n", c);
        failures++;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  net.Stop();
  server.scheduler().Shutdown();

  if (failures.load() != 0) {
    std::fprintf(stderr, "net_smoke: %d failures\n", failures.load());
    return 1;
  }
  std::printf("net_smoke: %d clients x %d rounds ok\n", kClients,
              kRoundsPerClient);
  return 0;
}
