// Socket front-end tests: NetServer + TcpClient over real loopback TCP.
// Covers multi-client correctness, pipelined response ordering, half-close
// draining, oversized-frame rejection, the connection limit, and the CSV
// dialect — everything the event loop must get right beyond what the
// in-process LoopbackClient can exercise.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "core/engine.h"
#include "net/net_server.h"
#include "net/socket.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace grimp {
namespace {

Table TinyTable() {
  Schema schema({{"color", AttrType::kCategorical},
                 {"size", AttrType::kCategorical},
                 {"price", AttrType::kNumerical}});
  Table t(schema);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(t.AppendRow({"red", "small", "1"}).ok());
    EXPECT_TRUE(t.AppendRow({"blue", "large", "9"}).ok());
  }
  return t;
}

Table DirtyRow(const std::string& color, const std::string& price) {
  Table t(TinyTable().schema());
  EXPECT_TRUE(t.AppendRow({color, "", price}).ok());
  return t;
}

std::unique_ptr<GrimpEngine> FitTinyEngine(uint64_t seed = 42) {
  GrimpOptions options;
  options.dim = 8;
  options.shared_hidden = 16;
  options.task_hidden = 16;
  options.max_epochs = 8;
  options.validation_fraction = 0.0;
  options.seed = seed;
  auto engine = std::make_unique<GrimpEngine>(options);
  EXPECT_TRUE(engine->Fit(TinyTable()).ok());
  return engine;
}

// Registry + server + running NetServer, torn down in reverse order.
struct NetFixture {
  explicit NetFixture(ServerOptions server_options = {},
                      NetServerOptions net_options = {})
      : server(&registry_after_add(), server_options),
        net(&server, net_options) {
    EXPECT_TRUE(net.Start().ok());
  }
  ~NetFixture() {
    net.Stop();
    server.scheduler().Shutdown();
  }

  ModelRegistry& registry_after_add() {
    EXPECT_TRUE(registry.Add("demo", "1", FitTinyEngine()).ok());
    return registry;
  }

  TcpClient Connect() {
    auto client = TcpClient::Connect("127.0.0.1", net.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  ModelRegistry registry;
  ImputationServer server;
  NetServer net;
};

std::string WantResponse(const GrimpEngine& engine, const std::string& color,
                         const std::string& price) {
  auto direct = engine.Transform(DirtyRow(color, price));
  EXPECT_TRUE(direct.ok());
  return std::string(R"({"ok":true,"model":"demo@1","row":)") +
         RowToJson(*direct, 0) + "}";
}

TEST(NetServerTest, MultiClientTrafficAllGetCorrectAnswers) {
  NetFixture fx;
  auto handle = fx.registry.Acquire("demo");
  const std::string want_red = WantResponse(handle->engine(), "red", "1");
  const std::string want_blue = WantResponse(handle->engine(), "blue", "9");

  const int64_t requests_before =
      MetricsRegistry::Global().GetCounter("serve.net.requests").value();

  constexpr int kClients = 6;
  constexpr int kCalls = 8;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TcpClient client = fx.Connect();
      for (int i = 0; i < kCalls; ++i) {
        const bool red = (c + i) % 2 == 0;
        if (!client
                 .SendLine(red
                               ? R"({"color":"red","size":null,"price":"1"})"
                               : R"({"color":"blue","size":null,"price":"9"})")
                 .ok()) {
          failures[c]++;
          continue;
        }
        auto response = client.RecvLine();
        if (!response.ok() || *response != (red ? want_red : want_blue)) {
          failures[c]++;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0) << "client " << c;

  const int64_t requests =
      MetricsRegistry::Global().GetCounter("serve.net.requests").value() -
      requests_before;
  EXPECT_EQ(requests, kClients * kCalls);
}

TEST(NetServerTest, PipelinedResponsesArriveInRequestOrder) {
  ServerOptions options;
  options.scheduler.num_workers = 4;  // give the scheduler room to reorder
  options.scheduler.max_batch = 2;
  NetFixture fx(options);
  TcpClient client = fx.Connect();

  constexpr int kDepth = 12;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(client
                    .SendLine(std::string(R"({"color":"red","size":null,)") +
                              "\"price\":\"" + std::to_string(i) + "\"}")
                    .ok());
  }
  for (int i = 0; i < kDepth; ++i) {
    auto response = client.RecvLine();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    // The response for request i carries request i's price cell back.
    EXPECT_NE(
        response->find("\"price\":\"" + std::to_string(i) + ".00000000\""),
        std::string::npos)
        << "response " << i << ": " << *response;
  }
}

TEST(NetServerTest, HalfCloseDrainsPendingResponsesThenEof) {
  NetFixture fx;
  TcpClient client = fx.Connect();
  constexpr int kDepth = 5;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(
        client.SendLine(R"({"color":"red","size":null,"price":"1"})").ok());
  }
  client.ShutdownWrite();
  for (int i = 0; i < kDepth; ++i) {
    auto response = client.RecvLine();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_NE(response->find("\"ok\":true"), std::string::npos);
  }
  EXPECT_FALSE(client.RecvLine().ok());  // server closed after the drain
}

TEST(NetServerTest, BlankLinesProduceNoResponse) {
  NetFixture fx;
  TcpClient client = fx.Connect();
  ASSERT_TRUE(client.SendLine("").ok());
  ASSERT_TRUE(
      client.SendLine(R"({"color":"red","size":null,"price":"1"})").ok());
  client.ShutdownWrite();
  auto response = client.RecvLine();
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("\"ok\":true"), std::string::npos);
  EXPECT_FALSE(client.RecvLine().ok());  // exactly one response, then EOF
}

TEST(NetServerTest, OversizedFrameGetsTypedErrorThenClose) {
  NetServerOptions net_options;
  net_options.max_frame_bytes = 256;
  NetFixture fx(ServerOptions{}, net_options);
  TcpClient client = fx.Connect();

  // A newline-less flood larger than the frame limit: the server must
  // answer with a typed error (not silence) and hang up.
  const std::string flood(1024, 'x');
  ASSERT_EQ(
      ::send(client.fd(), flood.data(), flood.size(), MSG_NOSIGNAL),
      static_cast<ssize_t>(flood.size()));
  auto response = client.RecvLine();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->rfind(R"({"ok":false,"code":"Invalid argument")", 0), 0)
      << *response;
  EXPECT_NE(response->find("max_frame_bytes"), std::string::npos);
  EXPECT_FALSE(client.RecvLine().ok());  // connection closed
}

TEST(NetServerTest, ConnectionLimitRejectsExtraClients) {
  NetServerOptions net_options;
  net_options.max_connections = 1;
  NetFixture fx(ServerOptions{}, net_options);
  const int64_t rejected_before =
      MetricsRegistry::Global().GetCounter("serve.net.rejected_conns").value();

  TcpClient first = fx.Connect();
  ASSERT_TRUE(
      first.SendLine(R"({"color":"red","size":null,"price":"1"})").ok());
  ASSERT_TRUE(first.RecvLine().ok());  // first client is fully established

  // The second connect completes at the TCP level (listen backlog) but the
  // server closes it on accept: the client sees EOF, never a hung socket.
  TcpClient second = fx.Connect();
  (void)second.SendLine(R"({"color":"red","size":null,"price":"1"})");
  EXPECT_FALSE(second.RecvLine().ok());
  EXPECT_GE(
      MetricsRegistry::Global().GetCounter("serve.net.rejected_conns").value(),
      rejected_before + 1);

  // The admitted client keeps working.
  ASSERT_TRUE(
      first.SendLine(R"({"color":"blue","size":null,"price":"9"})").ok());
  EXPECT_TRUE(first.RecvLine().ok());
}

TEST(NetServerTest, CsvDialectServesRowsAndTypedErrorLines) {
  ServerOptions options;
  options.format = WireFormat::kCsv;
  NetFixture fx(options);
  TcpClient client = fx.Connect();

  ASSERT_TRUE(client.SendLine("color,size,price").ok());  // header, no reply
  ASSERT_TRUE(client.SendLine("red,,1").ok());
  ASSERT_TRUE(client.SendLine("red,1").ok());  // truncated: 2 fields
  client.ShutdownWrite();

  auto row = client.RecvLine();
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->rfind("#error", 0), std::string::npos) << *row;
  EXPECT_NE(row->find("red"), std::string::npos);

  auto err = client.RecvLine();
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->rfind("#error Invalid argument", 0), 0) << *err;
  EXPECT_FALSE(client.RecvLine().ok());
}

}  // namespace
}  // namespace grimp
