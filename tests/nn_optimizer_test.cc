#include <gtest/gtest.h>

#include <cmath>

#include "tensor/nn.h"
#include "tensor/optimizer.h"

namespace grimp {
namespace {

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(1);
  Linear lin("l", 3, 2, &rng);
  EXPECT_EQ(lin.in_dim(), 3);
  EXPECT_EQ(lin.out_dim(), 2);
  EXPECT_EQ(lin.NumParameters(), 3 * 2 + 2);
  Tape tape;
  auto x = tape.Constant(Tensor::Zeros(4, 3));
  auto y = lin.Forward(&tape, x);
  EXPECT_EQ(tape.value(y).rows(), 4);
  EXPECT_EQ(tape.value(y).cols(), 2);
  // Zero input -> output equals bias (initialized to zero).
  EXPECT_EQ(tape.value(y).SumAbs(), 0.0f);
}

TEST(MlpTest, HiddenReluAndParameterCollection) {
  Rng rng(2);
  Mlp mlp("m", {4, 8, 3}, &rng);
  EXPECT_EQ(mlp.NumParameters(), (4 * 8 + 8) + (8 * 3 + 3));
  std::vector<Parameter*> params;
  mlp.CollectParameters(&params);
  EXPECT_EQ(params.size(), 4u);  // two layers x (W, b)
  Tape tape;
  Rng data_rng(3);
  auto x = tape.Constant(Tensor::GlorotUniform(5, 4, &data_rng));
  auto y = mlp.Forward(&tape, x);
  EXPECT_EQ(tape.value(y).cols(), 3);
}

// Fits y = X w* with gradient descent; both optimizers must converge.
template <typename OptimizerT, typename... Args>
double FitLeastSquares(Args... args) {
  Rng rng(4);
  const Tensor x = Tensor::GlorotUniform(64, 3, &rng);
  const Tensor w_true = Tensor::FromVector(3, 1, {1.0f, -2.0f, 0.5f});
  const Tensor y = MatMul(x, w_true);
  std::vector<float> targets(64);
  for (int64_t i = 0; i < 64; ++i) targets[static_cast<size_t>(i)] = y[i];

  Parameter w("w", Tensor::Zeros(3, 1));
  OptimizerT opt({&w}, args...);
  double loss_value = 0.0;
  for (int step = 0; step < 400; ++step) {
    Tape tape;
    auto pred = tape.MatMul(tape.Constant(x), tape.Leaf(&w));
    auto loss = tape.MseLoss(pred, targets);
    loss_value = tape.value(loss).scalar();
    tape.Backward(loss);
    opt.Step();
    opt.ZeroGrad();
  }
  return loss_value;
}

TEST(OptimizerTest, SgdConvergesOnLeastSquares) {
  EXPECT_LT((FitLeastSquares<Sgd, float>(0.5f)), 1e-4);
}

TEST(OptimizerTest, SgdWithMomentumConverges) {
  EXPECT_LT((FitLeastSquares<Sgd, float, float>(0.1f, 0.9f)), 1e-4);
}

TEST(OptimizerTest, AdamConvergesOnLeastSquares) {
  EXPECT_LT((FitLeastSquares<Adam, float>(0.05f)), 1e-4);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Parameter p("p", Tensor::Zeros(1, 4));
  p.grad = Tensor::FromVector(1, 4, {3.0f, 0.0f, 4.0f, 0.0f});  // norm 5
  Sgd opt({&p}, 1.0f);
  opt.ClipGradNorm(1.0f);
  double norm_sq = 0;
  for (int64_t i = 0; i < 4; ++i) norm_sq += p.grad[i] * p.grad[i];
  EXPECT_NEAR(std::sqrt(norm_sq), 1.0, 1e-5);
  // Direction preserved.
  EXPECT_NEAR(p.grad[0] / p.grad[2], 0.75, 1e-5);
}

TEST(OptimizerTest, ClipGradNormNoOpWhenSmall) {
  Parameter p("p", Tensor::Zeros(1, 2));
  p.grad = Tensor::FromVector(1, 2, {0.1f, 0.1f});
  Adam opt({&p}, 0.1f);
  opt.ClipGradNorm(10.0f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.1f);
}

TEST(OptimizerTest, AdamWeightDecayShrinksWeights) {
  Parameter p("p", Tensor::Full(1, 1, 10.0f));
  Adam opt({&p}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  for (int i = 0; i < 50; ++i) {
    // Zero data gradient: only decay acts.
    opt.Step();
    opt.ZeroGrad();
  }
  EXPECT_LT(std::fabs(p.value[0]), 10.0f);
}

}  // namespace
}  // namespace grimp
