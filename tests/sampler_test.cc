#include "graph/sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/rng.h"
#include "graph/hetero_graph.h"

namespace grimp {
namespace {

// A small 2-edge-type graph: node 0 is a hub under type 0 (neighbors
// 1..6), sparse under type 1 (neighbors 7, 8). All edges bidirectional,
// matching the builder's convention.
HeteroGraph HubGraph() {
  HeteroGraph g;
  for (int i = 0; i < 9; ++i) g.AddNode(NodeInfo{});
  std::vector<std::pair<int32_t, int32_t>> t0, t1;
  for (int32_t v = 1; v <= 6; ++v) {
    t0.emplace_back(0, v);
    t0.emplace_back(v, 0);
  }
  for (int32_t v = 7; v <= 8; ++v) {
    t1.emplace_back(0, v);
    t1.emplace_back(v, 0);
  }
  std::vector<CsrAdjacency> adj;
  adj.push_back(CsrAdjacency::FromEdges(9, t0));
  adj.push_back(CsrAdjacency::FromEdges(9, t1));
  g.SetAdjacency(std::move(adj));
  return g;
}

std::set<int32_t> GlobalNeighbors(const HeteroGraph& g, int type,
                                  int32_t node) {
  std::set<int32_t> out;
  const auto [b, e] = g.adjacency(type).NeighborRange(node);
  for (int32_t k = b; k < e; ++k) {
    out.insert(g.adjacency(type).indices()[static_cast<size_t>(k)]);
  }
  return out;
}

TEST(NeighborSamplerTest, FanoutRespectedPerEdgeType) {
  const HeteroGraph g = HubGraph();
  NeighborSampler sampler(&g, {3});
  Rng rng(7);
  const SampledSubgraph sub = sampler.Sample({0}, &rng);
  ASSERT_EQ(sub.num_layers(), 1);
  const GraphBlock& block = sub.blocks[0];
  EXPECT_EQ(block.num_dst, 1);
  ASSERT_EQ(block.adjacency.size(), 2u);
  // Hub type capped at the fanout; sparse type keeps its full degree.
  EXPECT_EQ(block.adjacency[0].Degree(0), 3);
  EXPECT_EQ(block.adjacency[1].Degree(0), 2);

  // Every sampled neighbor is a true neighbor, with no duplicates.
  for (int t = 0; t < 2; ++t) {
    const std::set<int32_t> truth = GlobalNeighbors(g, t, 0);
    std::set<int32_t> sampled;
    const auto [b, e] = block.adjacency[t].NeighborRange(0);
    for (int32_t k = b; k < e; ++k) {
      const int32_t local = block.adjacency[t].indices()[static_cast<size_t>(k)];
      ASSERT_GE(local, 0);
      ASSERT_LT(local, block.num_src);
      const int32_t global = sub.input_nodes[static_cast<size_t>(local)];
      EXPECT_TRUE(truth.count(global)) << "type " << t << " node " << global;
      EXPECT_TRUE(sampled.insert(global).second) << "duplicate " << global;
    }
  }
}

TEST(NeighborSamplerTest, LocalRemapIsBijective) {
  const HeteroGraph g = HubGraph();
  NeighborSampler sampler(&g, {2, 2});
  Rng rng(11);
  const SampledSubgraph sub = sampler.Sample({0, 5}, &rng);
  ASSERT_EQ(sub.num_layers(), 2);

  // input_nodes hold distinct globals: local <-> global is a bijection.
  std::unordered_set<int32_t> uniq(sub.input_nodes.begin(),
                                   sub.input_nodes.end());
  EXPECT_EQ(uniq.size(), sub.input_nodes.size());
  EXPECT_EQ(static_cast<int64_t>(sub.input_nodes.size()),
            sub.blocks[0].num_src);

  // Blocks chain: one block's sources are the previous block's inputs.
  EXPECT_EQ(sub.blocks[0].num_dst, sub.blocks[1].num_src);
  // The final block's destinations are the seeds, in order.
  EXPECT_EQ(sub.blocks[1].num_dst, 2);
  ASSERT_EQ(sub.output_nodes.size(), 2u);
  EXPECT_EQ(sub.output_nodes[0], 0);
  EXPECT_EQ(sub.output_nodes[1], 5);
  // Destinations are a prefix of the first block's sources.
  EXPECT_EQ(sub.input_nodes[0], 0);
  EXPECT_EQ(sub.input_nodes[1], 5);

  // All local indices stay in range for their block.
  for (const GraphBlock& block : sub.blocks) {
    for (const CsrAdjacency& adj : block.adjacency) {
      EXPECT_EQ(adj.num_nodes(), block.num_dst);
      for (int32_t local : adj.indices()) {
        EXPECT_GE(local, 0);
        EXPECT_LT(local, block.num_src);
      }
    }
  }
}

TEST(NeighborSamplerTest, DeterministicUnderFixedSeed) {
  const HeteroGraph g = HubGraph();
  NeighborSampler sampler(&g, {2, 3});
  Rng rng_a(99), rng_b(99);
  const SampledSubgraph a = sampler.Sample({0, 3}, &rng_a);
  const SampledSubgraph b = sampler.Sample({0, 3}, &rng_b);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  EXPECT_EQ(a.input_nodes, b.input_nodes);
  EXPECT_EQ(a.output_nodes, b.output_nodes);
  for (size_t l = 0; l < a.blocks.size(); ++l) {
    EXPECT_EQ(a.blocks[l].num_src, b.blocks[l].num_src);
    EXPECT_EQ(a.blocks[l].num_dst, b.blocks[l].num_dst);
    ASSERT_EQ(a.blocks[l].adjacency.size(), b.blocks[l].adjacency.size());
    for (size_t t = 0; t < a.blocks[l].adjacency.size(); ++t) {
      EXPECT_EQ(a.blocks[l].adjacency[t].offsets(),
                b.blocks[l].adjacency[t].offsets());
      EXPECT_EQ(a.blocks[l].adjacency[t].indices(),
                b.blocks[l].adjacency[t].indices());
    }
  }
}

TEST(NeighborSamplerTest, KeepsEverythingWhenFanoutExceedsDegree) {
  const HeteroGraph g = HubGraph();
  NeighborSampler sampler(&g, {100});
  Rng rng(1);
  const SampledSubgraph sub = sampler.Sample({0}, &rng);
  const GraphBlock& block = sub.blocks[0];
  EXPECT_EQ(block.adjacency[0].Degree(0), 6);
  EXPECT_EQ(block.adjacency[1].Degree(0), 2);
  // With nothing dropped the sampled neighbor sets equal the full ones.
  for (int t = 0; t < 2; ++t) {
    std::set<int32_t> sampled;
    const auto [b, e] = block.adjacency[t].NeighborRange(0);
    for (int32_t k = b; k < e; ++k) {
      const int32_t local = block.adjacency[t].indices()[static_cast<size_t>(k)];
      sampled.insert(sub.input_nodes[static_cast<size_t>(local)]);
    }
    EXPECT_EQ(sampled, GlobalNeighbors(g, t, 0));
  }
}

TEST(NeighborSamplerTest, IsolatedSeedGetsEmptySegments) {
  HeteroGraph g;
  for (int i = 0; i < 3; ++i) g.AddNode(NodeInfo{});
  std::vector<CsrAdjacency> adj;
  adj.push_back(CsrAdjacency::FromEdges(3, {{1, 2}, {2, 1}}));
  g.SetAdjacency(std::move(adj));
  NeighborSampler sampler(&g, {4});
  Rng rng(5);
  const SampledSubgraph sub = sampler.Sample({0}, &rng);
  EXPECT_EQ(sub.blocks[0].adjacency[0].Degree(0), 0);
  EXPECT_EQ(sub.blocks[0].num_src, 1);  // just the seed itself
}

}  // namespace
}  // namespace grimp
