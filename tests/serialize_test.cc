#include <gtest/gtest.h>

#include <fstream>
#include <iterator>

#include "common/binary_io.h"
#include "core/engine.h"
#include "data/datasets.h"
#include "eval/metrics.h"

namespace grimp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- Binary I/O primitives ---------------------------------------------------

TEST(BinaryIoTest, PodRoundTrip) {
  const std::string path = TempPath("grimp_pod.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU32(7u);
    writer.WriteI32(-3);
    writer.WriteI64(int64_t{1} << 40);
    writer.WriteU64(0xdeadbeefcafef00dULL);
    writer.WriteF32(1.5f);
    writer.WriteF64(-2.25);
    writer.WriteBool(true);
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path);
  EXPECT_EQ(*reader.ReadU32(), 7u);
  EXPECT_EQ(*reader.ReadI32(), -3);
  EXPECT_EQ(*reader.ReadI64(), int64_t{1} << 40);
  EXPECT_EQ(*reader.ReadU64(), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(*reader.ReadF32(), 1.5f);
  EXPECT_EQ(*reader.ReadF64(), -2.25);
  EXPECT_TRUE(*reader.ReadBool());
}

TEST(BinaryIoTest, StringAndVectorRoundTrip) {
  const std::string path = TempPath("grimp_vec.bin");
  const std::vector<float> floats{1.0f, -2.0f, 0.5f};
  const std::vector<double> doubles{3.14, -1e10};
  const std::vector<int64_t> ints{1, -2, 3};
  const std::vector<std::string> strings{"", "abc", "with \n newline"};
  {
    BinaryWriter writer(path);
    writer.WriteString("hello");
    writer.WriteF32Vector(floats);
    writer.WriteF64Vector(doubles);
    writer.WriteI64Vector(ints);
    writer.WriteStringVector(strings);
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path);
  EXPECT_EQ(*reader.ReadString(), "hello");
  EXPECT_EQ(*reader.ReadF32Vector(), floats);
  EXPECT_EQ(*reader.ReadF64Vector(), doubles);
  EXPECT_EQ(*reader.ReadI64Vector(), ints);
  EXPECT_EQ(*reader.ReadStringVector(), strings);
}

TEST(BinaryIoTest, TruncatedFileFailsGracefully) {
  const std::string path = TempPath("grimp_trunc.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU64(1000);  // promises 1000 bytes of string
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path);
  EXPECT_FALSE(reader.ReadString().ok());
}

TEST(BinaryIoTest, MissingFileFails) {
  BinaryReader reader("/nonexistent/grimp.bin");
  EXPECT_FALSE(reader.status().ok());
  EXPECT_FALSE(reader.ReadU32().ok());
}

TEST(BinaryIoTest, CorruptLengthRejected) {
  const std::string path = TempPath("grimp_huge.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU64(uint64_t{1} << 60);  // absurd element count
    ASSERT_TRUE(writer.Close().ok());
  }
  BinaryReader reader(path);
  EXPECT_FALSE(reader.ReadF32Vector().ok());
}

// --- Model persistence ---------------------------------------------------------

TEST(ModelPersistenceTest, SaveLoadTransformIsIdentical) {
  auto clean = GenerateDatasetByName("mammogram", 5, 120);
  ASSERT_TRUE(clean.ok());
  const CorruptedTable corrupted = InjectMcar(*clean, 0.25, 3);

  GrimpOptions options;
  options.dim = 16;
  options.max_epochs = 30;
  GrimpEngine engine(options);
  ASSERT_TRUE(engine.Fit(corrupted.dirty).ok());
  auto direct = engine.Transform(corrupted.dirty);
  ASSERT_TRUE(direct.ok());

  const std::string path = TempPath("grimp_model.bin");
  ASSERT_TRUE(engine.Save(path).ok());

  auto loaded_or = GrimpEngine::Load(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  GrimpEngine& loaded = **loaded_or;
  EXPECT_TRUE(loaded.fitted());
  EXPECT_EQ(loaded.options().dim, 16);

  auto from_disk = loaded.Transform(corrupted.dirty);
  ASSERT_TRUE(from_disk.ok()) << from_disk.status().ToString();
  for (int c = 0; c < direct->num_cols(); ++c) {
    for (int64_t r = 0; r < direct->num_rows(); ++r) {
      ASSERT_EQ(direct->column(c).StringAt(r),
                from_disk->column(c).StringAt(r))
          << "col " << c << " row " << r;
    }
  }
}

TEST(ModelPersistenceTest, SaveRequiresFittedEngine) {
  GrimpEngine engine{GrimpOptions{}};
  EXPECT_FALSE(engine.Save(TempPath("grimp_unfitted.bin")).ok());
}

TEST(ModelPersistenceTest, FitValidatesOptions) {
  auto clean = GenerateDatasetByName("mammogram", 5, 60);
  ASSERT_TRUE(clean.ok());
  GrimpOptions options;
  options.max_epochs = -3;
  GrimpEngine engine(options);
  const Status status = engine.Fit(*clean);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST(ModelPersistenceTest, LoadRejectsGarbage) {
  const std::string path = TempPath("grimp_garbage.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU64(0x1234567812345678ULL);  // wrong magic
    ASSERT_TRUE(writer.Close().ok());
  }
  auto loaded = GrimpEngine::Load(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_FALSE(GrimpEngine::Load("/nonexistent/model.bin").ok());
}

// Saves a quickly-fitted model and returns its path.
std::string SaveTinyModel(const std::string& name) {
  auto clean = GenerateDatasetByName("mammogram", 5, 60);
  EXPECT_TRUE(clean.ok());
  GrimpOptions options;
  options.dim = 8;
  options.max_epochs = 8;
  GrimpEngine engine(options);
  EXPECT_TRUE(engine.Fit(*clean).ok());
  const std::string path = TempPath(name);
  EXPECT_TRUE(engine.Save(path).ok());
  return path;
}

TEST(ModelPersistenceTest, CorruptPayloadByteFailsChecksum) {
  const std::string path = SaveTinyModel("grimp_corrupt.bin");
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const auto size = static_cast<int64_t>(file.tellg());
    ASSERT_GT(size, 32);
    file.seekp(size / 2);  // past the header, before the footer
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }
  auto loaded = GrimpEngine::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  EXPECT_NE(loaded.status().message().find("checksum mismatch in"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find(path), std::string::npos);
}

TEST(ModelPersistenceTest, TruncatedModelFileFails) {
  const std::string path = SaveTinyModel("grimp_truncated_model.bin");
  std::string payload;
  {
    std::ifstream file(path, std::ios::binary);
    payload.assign(std::istreambuf_iterator<char>(file),
                   std::istreambuf_iterator<char>());
  }
  ASSERT_GT(payload.size(), 64u);
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file.write(payload.data(), static_cast<int64_t>(payload.size() / 2));
  }
  auto loaded = GrimpEngine::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(path), std::string::npos)
      << loaded.status().ToString();
}

TEST(ModelPersistenceTest, WrongVersionNamesExpectedAndFound) {
  const std::string path = TempPath("grimp_future_version.bin");
  {
    BinaryWriter writer(path);
    writer.WriteU64(0x4752494d504d444cULL);  // "GRIMPMDL", matches Save()
    writer.WriteU32(99);                     // from a future format
    ASSERT_TRUE(writer.Close().ok());
  }
  auto loaded = GrimpEngine::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  const Status status = loaded.status();  // status() returns by value
  const std::string& message = status.message();
  EXPECT_NE(message.find(path), std::string::npos) << message;
  EXPECT_NE(message.find("expected 2"), std::string::npos) << message;
  EXPECT_NE(message.find("found 99"), std::string::npos) << message;
}

TEST(ModelPersistenceTest, LoadedModelTransformsUnseenTable) {
  // Fit + save on one slice; load and impute a disjoint slice.
  auto all = GenerateDatasetByName("contraceptive", 9, 240);
  ASSERT_TRUE(all.ok());
  const CsvData csv = all->ToCsv();
  Table source(all->schema());
  Table target(all->schema());
  for (int64_t r = 0; r < all->num_rows(); ++r) {
    ASSERT_TRUE((r < 160 ? source : target)
                    .AppendRow(csv.rows[static_cast<size_t>(r)])
                    .ok());
  }
  GrimpOptions options;
  options.dim = 16;
  options.max_epochs = 40;
  GrimpEngine engine(options);
  ASSERT_TRUE(engine.Fit(source).ok());
  const std::string path = TempPath("grimp_transfer_model.bin");
  ASSERT_TRUE(engine.Save(path).ok());

  const CorruptedTable corrupted = InjectMcar(target, 0.25, 7);
  auto loaded = GrimpEngine::Load(path);
  ASSERT_TRUE(loaded.ok());
  auto imputed = (*loaded)->Transform(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  const ImputationScore score = ScoreImputation(*imputed, corrupted, target);
  // Better than uniform guessing over 2-4-value domains.
  EXPECT_GT(score.Accuracy(), 0.45);
}

}  // namespace
}  // namespace grimp
