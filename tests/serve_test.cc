#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/engine.h"
#include "serve/cache.h"
#include "serve/model_registry.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/wire.h"

namespace grimp {
namespace {

// --- Shared fixtures --------------------------------------------------------

Table TinyTable() {
  Schema schema({{"color", AttrType::kCategorical},
                 {"size", AttrType::kCategorical},
                 {"price", AttrType::kNumerical}});
  Table t(schema);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(t.AppendRow({"red", "small", "1"}).ok());
    EXPECT_TRUE(t.AppendRow({"blue", "large", "9"}).ok());
  }
  return t;
}

// One tuple with a missing cell, schema-compatible with TinyTable.
Table DirtyRow(const std::string& color, const std::string& price) {
  Table t(TinyTable().schema());
  EXPECT_TRUE(t.AppendRow({color, "", price}).ok());
  return t;
}

std::unique_ptr<GrimpEngine> FitTinyEngine(uint64_t seed = 42) {
  GrimpOptions options;
  options.dim = 8;
  options.shared_hidden = 16;
  options.task_hidden = 16;
  options.max_epochs = 8;
  options.validation_fraction = 0.0;
  options.seed = seed;
  auto engine = std::make_unique<GrimpEngine>(options);
  EXPECT_TRUE(engine->Fit(TinyTable()).ok());
  return engine;
}

// Result<T>::operator* on a temporary binds the const& overload, which
// would copy the move-only handle; go through a named lvalue instead.
ModelHandle MustAcquire(ModelRegistry& registry, const std::string& spec) {
  auto handle = registry.Acquire(spec);
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  return std::move(*handle);
}

void ExpectSameRow(const Table& a, int64_t ra, const Table& b, int64_t rb) {
  ASSERT_EQ(a.num_cols(), b.num_cols());
  for (int c = 0; c < a.num_cols(); ++c) {
    EXPECT_EQ(a.column(c).StringAt(ra), b.column(c).StringAt(rb))
        << "col " << c;
  }
}

// --- Wire codec -------------------------------------------------------------

TEST(WireTest, ParseFlatJsonBasics) {
  auto fields =
      ParseFlatJson(R"({"a":"x","b":null,"c":3.5,"d":true,"e":-2e3})");
  ASSERT_TRUE(fields.ok()) << fields.status().ToString();
  EXPECT_EQ(fields->at("a"), "x");
  EXPECT_EQ(fields->at("b"), "");
  EXPECT_EQ(fields->at("c"), "3.5");
  EXPECT_EQ(fields->at("d"), "true");
  EXPECT_EQ(fields->at("e"), "-2e3");
  EXPECT_TRUE(ParseFlatJson("{}")->empty());
  EXPECT_TRUE(ParseFlatJson("  { \"k\" : \"v\" }  ").ok());
}

TEST(WireTest, ParseFlatJsonEscapes) {
  auto fields = ParseFlatJson(R"({"k":"a\"b\\c\ndA"})");
  ASSERT_TRUE(fields.ok()) << fields.status().ToString();
  EXPECT_EQ(fields->at("k"), "a\"b\\c\ndA");
}

TEST(WireTest, ParseFlatJsonRejectsMalformed) {
  EXPECT_FALSE(ParseFlatJson("").ok());
  EXPECT_FALSE(ParseFlatJson("[1]").ok());
  EXPECT_FALSE(ParseFlatJson(R"({"a":{"b":1}})").ok());   // nested object
  EXPECT_FALSE(ParseFlatJson(R"({"a":[1]})").ok());       // array
  EXPECT_FALSE(ParseFlatJson(R"({"a":bogus})").ok());     // bare word
  EXPECT_FALSE(ParseFlatJson(R"({"a":"x"} junk)").ok());  // trailing
  EXPECT_FALSE(ParseFlatJson(R"({"a":"x","a":"y"})").ok());  // dup key
  EXPECT_FALSE(ParseFlatJson(R"({"a":"unterminated)").ok());
}

TEST(WireTest, EscapeJsonRoundTripsThroughParser) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t";
  auto fields = ParseFlatJson("{\"k\":\"" + EscapeJson(nasty) + "\"}");
  ASSERT_TRUE(fields.ok()) << fields.status().ToString();
  EXPECT_EQ(fields->at("k"), nasty);
}

TEST(WireTest, JsonFieldsToRowBuildsSchemaRow) {
  const Schema schema = TinyTable().schema();
  auto table =
      JsonFieldsToRow(schema, {{"color", "red"}, {"price", "2.5"}});
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 1);
  EXPECT_EQ(table->column(0).StringAt(0), "red");
  EXPECT_TRUE(table->IsMissing(0, 1));  // absent field -> missing
  EXPECT_EQ(table->column(2).NumAt(0), 2.5);

  auto bad = JsonFieldsToRow(schema, {{"colour", "red"}});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("colour"), std::string::npos);
}

TEST(WireTest, RowSerialization) {
  Table row = DirtyRow("red", "1");
  EXPECT_EQ(RowToJson(row, 0),
            R"({"color":"red","size":null,"price":"1.00000000"})");
  EXPECT_EQ(RowToCsvLine(row, 0), "red,,1.00000000");
}

// --- Model registry ---------------------------------------------------------

TEST(ModelRegistryTest, AcquireResolvesServingAndPinnedVersions) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", "1", FitTinyEngine(1)).ok());
  ASSERT_TRUE(registry.Add("m", "2", FitTinyEngine(2)).ok());
  EXPECT_EQ(registry.size(), 2);

  auto serving = registry.Acquire("m");
  ASSERT_TRUE(serving.ok());
  EXPECT_EQ(serving->version(), "2");  // newest registration serves

  auto pinned = registry.Acquire("m@1");
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->version(), "1");

  EXPECT_TRUE(registry.Acquire("nope").status().IsNotFound());
  EXPECT_TRUE(registry.Acquire("m@9").status().IsNotFound());
  EXPECT_TRUE(registry.Add("m", "2", FitTinyEngine(3)).IsAlreadyExists());
}

TEST(ModelRegistryTest, UnloadDrainsLiveHandles) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", "1", FitTinyEngine()).ok());

  // A live handle blocks the drain until released.
  auto handle = registry.Acquire("m");
  ASSERT_TRUE(handle.ok());
  Status timed_out = registry.Unload("m", "1", 0.05);
  EXPECT_TRUE(timed_out.IsDeadlineExceeded()) << timed_out.ToString();
  // The version is gone from the registry either way...
  EXPECT_TRUE(registry.Acquire("m").status().IsNotFound());
  // ...but the straggler handle still works until released.
  EXPECT_TRUE(handle->engine().fitted());
  handle->Release();
}

TEST(ModelRegistryTest, HotSwapDrainsOldVersionAfterRelease) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", "1", FitTinyEngine(1)).ok());
  auto in_flight = registry.Acquire("m");
  ASSERT_TRUE(in_flight.ok());

  // Swap: new version starts serving immediately.
  ASSERT_TRUE(registry.Add("m", "2", FitTinyEngine(2)).ok());
  EXPECT_EQ(registry.Acquire("m")->version(), "2");

  // Drain of v1 completes once the in-flight handle lets go (released from
  // another thread while Unload blocks).
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    in_flight->Release();
  });
  EXPECT_TRUE(registry.Unload("m", "1", 5.0).ok());
  releaser.join();
  EXPECT_EQ(registry.size(), 1);
}

// --- Scheduler failure paths ------------------------------------------------

TEST(SchedulerTest, QueueFullRejectsWithUnavailable) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", "1", FitTinyEngine()).ok());

  SchedulerOptions options;
  options.max_queue = 1;
  options.max_batch = 8;
  // The worker lingers for a full batch, so the first request stays queued
  // while the second hits the bound.
  options.batch_linger_seconds = 0.5;
  RequestScheduler scheduler(options);

  ImputeRequest first;
  first.model = MustAcquire(registry, "m");
  first.table = DirtyRow("red", "1");
  auto first_future = scheduler.Submit(std::move(first));

  ImputeRequest second;
  second.model = MustAcquire(registry, "m");
  second.table = DirtyRow("blue", "9");
  Result<Table> rejected = scheduler.Impute(std::move(second));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable()) << rejected.status().ToString();
  EXPECT_NE(rejected.status().message().find("queue is full"),
            std::string::npos);
  EXPECT_EQ(MetricsRegistry::Global()
                .GetCounter("serve.rejected.queue_full")
                .value() > 0,
            true);

  // The admitted request still completes normally.
  EXPECT_TRUE(first_future.get().ok());
}

TEST(SchedulerTest, ExpiredDeadlineRejectedInsteadOfExecuted) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", "1", FitTinyEngine()).ok());

  SchedulerOptions options;
  options.max_batch = 8;
  options.batch_linger_seconds = 0.2;  // requests wait in queue ~200ms
  RequestScheduler scheduler(options);

  ImputeRequest patient;
  patient.model = MustAcquire(registry, "m");
  patient.table = DirtyRow("red", "1");
  auto patient_future = scheduler.Submit(std::move(patient));

  ImputeRequest hurried;
  hurried.model = MustAcquire(registry, "m");
  hurried.table = DirtyRow("blue", "9");
  hurried.deadline_seconds = 0.01;  // expires during the linger window
  Result<Table> expired = scheduler.Impute(std::move(hurried));
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded())
      << expired.status().ToString();
  EXPECT_NE(expired.status().message().find("deadline expired"),
            std::string::npos);

  // The deadline-free batch-mate is unaffected.
  EXPECT_TRUE(patient_future.get().ok());
}

TEST(SchedulerTest, SchemaMismatchRejectedWithoutPoisoningBatch) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", "1", FitTinyEngine()).ok());
  auto engine_handle = registry.Acquire("m");
  ASSERT_TRUE(engine_handle.ok());
  const GrimpEngine& engine = engine_handle->engine();

  SchedulerOptions options;
  options.max_batch = 8;
  options.batch_linger_seconds = 0.2;  // good requests share one batch
  RequestScheduler scheduler(options);

  ImputeRequest good1;
  good1.model = MustAcquire(registry, "m");
  good1.table = DirtyRow("red", "1");
  auto f1 = scheduler.Submit(std::move(good1));

  Table wrong_schema(Schema({{"totally", AttrType::kCategorical},
                             {"different", AttrType::kCategorical}}));
  ASSERT_TRUE(wrong_schema.AppendRow({"a", "b"}).ok());
  ImputeRequest bad;
  bad.model = MustAcquire(registry, "m");
  bad.table = std::move(wrong_schema);
  Result<Table> rejected = scheduler.Impute(std::move(bad));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsFailedPrecondition())
      << rejected.status().ToString();

  ImputeRequest good2;
  good2.model = MustAcquire(registry, "m");
  good2.table = DirtyRow("blue", "9");
  auto f2 = scheduler.Submit(std::move(good2));

  // Both good requests impute exactly what a direct offline call does.
  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  auto direct1 = engine.Transform(DirtyRow("red", "1"));
  auto direct2 = engine.Transform(DirtyRow("blue", "9"));
  ASSERT_TRUE(direct1.ok() && direct2.ok());
  ExpectSameRow(*r1, 0, *direct1, 0);
  ExpectSameRow(*r2, 0, *direct2, 0);
}

TEST(SchedulerTest, ShutdownDrainsQueuedRequestsThenRejectsNew) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", "1", FitTinyEngine()).ok());

  SchedulerOptions options;
  options.max_batch = 4;
  RequestScheduler scheduler(options);

  std::vector<std::future<Result<Table>>> futures;
  for (int i = 0; i < 6; ++i) {
    ImputeRequest request;
    request.model = MustAcquire(registry, "m");
    request.table = DirtyRow(i % 2 == 0 ? "red" : "blue", "1");
    futures.push_back(scheduler.Submit(std::move(request)));
  }
  scheduler.Shutdown();  // must drain, not drop
  for (auto& future : futures) {
    Result<Table> result = future.get();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }

  ImputeRequest late;
  late.model = MustAcquire(registry, "m");
  late.table = DirtyRow("red", "1");
  Result<Table> rejected = scheduler.Impute(std::move(late));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable());
}

TEST(SchedulerTest, MicroBatchedResultsMatchSoloTransforms) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("m", "1", FitTinyEngine()).ok());
  auto engine_handle = registry.Acquire("m");
  const GrimpEngine& engine = engine_handle->engine();

  SchedulerOptions options;
  options.max_batch = 8;
  options.batch_linger_seconds = 0.2;
  RequestScheduler scheduler(options);

  const int64_t batches_before =
      MetricsRegistry::Global().GetCounter("serve.batches").value();
  std::vector<std::future<Result<Table>>> futures;
  std::vector<Table> inputs;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(DirtyRow(i % 2 == 0 ? "red" : "blue",
                              i % 2 == 0 ? "1" : "9"));
    ImputeRequest request;
    request.model = MustAcquire(registry, "m");
    request.table = inputs.back();
    futures.push_back(scheduler.Submit(std::move(request)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<Table> served = futures[i].get();
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    auto direct = engine.Transform(inputs[i]);
    ASSERT_TRUE(direct.ok());
    ExpectSameRow(*served, 0, *direct, 0);
  }
  // The linger window really did fuse requests: fewer batches than
  // requests ran, and the batch-size histogram saw multi-request batches.
  const int64_t batches =
      MetricsRegistry::Global().GetCounter("serve.batches").value() -
      batches_before;
  EXPECT_GE(batches, 1);
  EXPECT_LT(batches, 5);
  EXPECT_GT(MetricsRegistry::Global().GetHistogram("serve.batch_size").max(),
            1.0);
}

// --- Server / loopback end-to-end -------------------------------------------

TEST(ServerTest, LoopbackServedRowIsBitIdenticalToOfflineTransform) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("demo", "1", FitTinyEngine()).ok());
  auto handle = registry.Acquire("demo");
  const GrimpEngine& engine = handle->engine();

  ServerOptions options;
  options.scheduler.max_batch = 4;
  ImputationServer server(&registry, options);
  LoopbackClient client(&server);

  const Table dirty = DirtyRow("red", "1");
  auto direct = engine.Transform(dirty);
  ASSERT_TRUE(direct.ok());

  const std::string response =
      client.Call(R"({"model":"demo","color":"red","size":null,"price":"1"})");
  const std::string expected =
      std::string(R"({"ok":true,"model":"demo@1","row":)") +
      RowToJson(*direct, 0) + "}";
  EXPECT_EQ(response, expected);
}

TEST(ServerTest, ConcurrentLoopbackClientsAllGetCorrectAnswers) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("demo", "1", FitTinyEngine()).ok());
  auto handle = registry.Acquire("demo");
  const GrimpEngine& engine = handle->engine();

  ServerOptions options;
  options.scheduler.max_batch = 8;
  ImputationServer server(&registry, options);

  auto direct_red = engine.Transform(DirtyRow("red", "1"));
  auto direct_blue = engine.Transform(DirtyRow("blue", "9"));
  ASSERT_TRUE(direct_red.ok() && direct_blue.ok());
  const std::string want_red =
      std::string(R"({"ok":true,"model":"demo@1","row":)") +
      RowToJson(*direct_red, 0) + "}";
  const std::string want_blue =
      std::string(R"({"ok":true,"model":"demo@1","row":)") +
      RowToJson(*direct_blue, 0) + "}";

  constexpr int kClients = 8;
  constexpr int kCallsPerClient = 4;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LoopbackClient client(&server);
      for (int i = 0; i < kCallsPerClient; ++i) {
        const bool red = (c + i) % 2 == 0;
        const std::string response = client.Call(
            red ? R"({"color":"red","size":null,"price":"1"})"
                : R"({"color":"blue","size":null,"price":"9"})");
        if (response != (red ? want_red : want_blue)) failures[c]++;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0) << "client " << c;
}

TEST(ServerTest, ErrorResponsesCarryTypedCodes) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("demo", "1", FitTinyEngine()).ok());
  ServerOptions options;
  ImputationServer server(&registry, options);
  LoopbackClient client(&server);

  EXPECT_NE(client.Call("not json").find("\"ok\":false"), std::string::npos);
  EXPECT_NE(client.Call(R"({"model":"ghost","color":"red"})")
                .find("\"code\":\"Not found\""),
            std::string::npos);
  EXPECT_NE(client.Call(R"({"bogus":"x"})").find("unknown column"),
            std::string::npos);
}

// --- Result cache -----------------------------------------------------------

std::shared_ptr<const Table> CachedRow(const std::string& color,
                                       const std::string& price) {
  return std::make_shared<const Table>(DirtyRow(color, price));
}

TEST(ResultCacheTest, RowKeyIsUnambiguousAcrossRowsAndModels) {
  const Table red1 = DirtyRow("red", "1");
  const Table red2 = DirtyRow("red", "2");
  const Table blue1 = DirtyRow("blue", "1");
  const std::string k = ResultCache::RowKey("demo@1", red1, 0);
  EXPECT_EQ(k, ResultCache::RowKey("demo@1", DirtyRow("red", "1"), 0));
  EXPECT_NE(k, ResultCache::RowKey("demo@2", red1, 0));  // version in key
  EXPECT_NE(k, ResultCache::RowKey("demo@1", red2, 0));
  EXPECT_NE(k, ResultCache::RowKey("demo@1", blue1, 0));
}

TEST(ResultCacheTest, HitAfterMissReturnsTheInsertedTable) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/8});
  const std::string key = ResultCache::RowKey("demo@1", DirtyRow("red", "1"), 0);
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.misses(), 1);

  auto value = CachedRow("red", "1");
  cache.Insert(key, value);
  std::shared_ptr<const Table> hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), value.get());  // same object, not a copy
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.size(), 1);
}

TEST(ResultCacheTest, LruEvictsLeastRecentlyUsedAndStaysBounded) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/3});
  auto key_of = [](int i) {
    return ResultCache::RowKey("demo@1", DirtyRow("red", std::to_string(i)), 0);
  };
  for (int i = 0; i < 3; ++i) cache.Insert(key_of(i), CachedRow("red", "1"));
  // Touch key 0 so key 1 becomes the LRU entry, then overflow.
  ASSERT_NE(cache.Lookup(key_of(0)), nullptr);
  cache.Insert(key_of(3), CachedRow("red", "1"));
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.Lookup(key_of(1)), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(key_of(0)), nullptr);  // refreshed, survived

  // Churn far past capacity: the bound holds and old keys are gone.
  for (int i = 0; i < 100; ++i) {
    cache.Insert(key_of(10 + i), CachedRow("red", "1"));
    EXPECT_LE(cache.size(), 3);
  }
  EXPECT_EQ(cache.Lookup(key_of(10)), nullptr);
  EXPECT_NE(cache.Lookup(key_of(109)), nullptr);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(ResultCacheOptions{/*capacity=*/0});
  const std::string key = ResultCache::RowKey("demo@1", DirtyRow("red", "1"), 0);
  cache.Insert(key, CachedRow("red", "1"));
  EXPECT_EQ(cache.Lookup(key), nullptr);
  EXPECT_EQ(cache.size(), 0);
}

// --- Server + cache ---------------------------------------------------------

TEST(ServerCacheTest, HitAfterMissIsBitIdentical) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("demo", "1", FitTinyEngine()).ok());
  ServerOptions options;
  options.cache.capacity = 16;
  ImputationServer server(&registry, options);
  LoopbackClient client(&server);

  const std::string line = R"({"color":"red","size":null,"price":"1"})";
  const std::string first = client.Call(line);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(server.cache().hits(), 0);
  EXPECT_EQ(server.cache().misses(), 1);

  const std::string second = client.Call(line);
  EXPECT_EQ(second, first);  // bit-identical replay from the cache
  EXPECT_EQ(server.cache().hits(), 1);
  EXPECT_EQ(server.cache().misses(), 1);
}

TEST(ServerCacheTest, HotSwapInvalidatesThroughVersionedKeys) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("demo", "1", FitTinyEngine(/*seed=*/42)).ok());
  ServerOptions options;
  options.cache.capacity = 16;
  ImputationServer server(&registry, options);
  LoopbackClient client(&server);

  const std::string line = R"({"color":"red","size":null,"price":"1"})";
  const std::string v1 = client.Call(line);
  EXPECT_NE(v1.find("\"model\":\"demo@1\""), std::string::npos);
  ASSERT_NE(client.Call(line).find("\"model\":\"demo@1\""),
            std::string::npos);  // cached under demo@1
  EXPECT_EQ(server.cache().hits(), 1);

  // Hot swap: version 2 becomes the serving version. The same request must
  // miss (new key) and be answered by the new engine, never the stale entry.
  ASSERT_TRUE(registry.Add("demo", "2", FitTinyEngine(/*seed=*/43)).ok());
  const std::string v2 = client.Call(line);
  EXPECT_NE(v2.find("\"model\":\"demo@2\""), std::string::npos);
  EXPECT_EQ(server.cache().hits(), 1);
  EXPECT_EQ(server.cache().misses(), 2);

  // The swapped version now has its own hot entry.
  EXPECT_EQ(client.Call(line), v2);
  EXPECT_EQ(server.cache().hits(), 2);

  // Pinned requests against the old version still work and still match.
  const std::string pinned = client.Call(
      R"({"model":"demo@1","color":"red","size":null,"price":"1"})");
  EXPECT_EQ(pinned, v1);
}

TEST(ServerCacheTest, CacheBoundHoldsUnderRequestChurn) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("demo", "1", FitTinyEngine()).ok());
  ServerOptions options;
  options.cache.capacity = 2;
  ImputationServer server(&registry, options);
  LoopbackClient client(&server);
  for (int i = 0; i < 20; ++i) {
    const std::string line = std::string(R"({"color":"red","size":null,)") +
                             "\"price\":\"" + std::to_string(i % 5) + "\"}";
    EXPECT_NE(client.Call(line).find("\"ok\":true"), std::string::npos);
    EXPECT_LE(server.cache().size(), 2);
  }
}

// --- Wire robustness (fuzz-style) -------------------------------------------

// Feeds one line through a WireSession and blocks for its response.
std::string CallSession(WireSession& session, const std::string& line) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  session.Submit(line, [&promise](std::string response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

TEST(WireFuzzTest, MalformedNdjsonFramesGetTypedErrors) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("demo", "1", FitTinyEngine()).ok());
  ImputationServer server(&registry, ServerOptions{});
  LoopbackClient client(&server);

  const char* kBad[] = {
      "{",                                      // truncated frame
      "}",                                      //
      R"({"color":"red")",                      // truncated after value
      R"({"color":)",                           // truncated mid-pair
      R"({"color":"red",})",                    // trailing comma
      R"({"color":"red"}})",                    // trailing garbage
      R"("color")",                             // not an object
      R"([{"color":"red"}])",                   // array frame
      R"({"color":{"r":1}})",                   // nested object
      R"({"color":"unterminated)",              // unterminated string
      R"({"color":"red","color":"blue"})",      // duplicate key
      R"({"bogus":"x"})",                       // unknown column
      R"({"model":"ghost","color":"red"})",     // unknown model
      R"({"deadline_ms":"soon","color":"red"})",  // bad deadline
      R"({"priority":"urgent","color":"red"})",   // bad priority
      "\x01\x02\xfe binary junk",               // raw bytes
  };
  for (const char* bad : kBad) {
    const std::string response = client.Call(bad);
    EXPECT_EQ(response.rfind("{\"ok\":false,\"code\":\"", 0), 0)
        << "input: " << bad << " -> " << response;
  }
  // The session is not poisoned: a valid request still succeeds.
  EXPECT_NE(client.Call(R"({"color":"red","size":null,"price":"1"})")
                .find("\"ok\":true"),
            std::string::npos);
}

TEST(WireFuzzTest, RandomGarbageNeverCrashesAndAlwaysAnswers) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("demo", "1", FitTinyEngine()).ok());
  ImputationServer server(&registry, ServerOptions{});
  LoopbackClient client(&server);

  // Deterministic garbage over a charset heavy in JSON structure, so the
  // parser's state machine gets driven into its corners rather than
  // rejecting everything at byte 0.
  const std::string charset = "{}[]\":,\\nul0.9xe -\t";
  Rng rng(2024);
  for (int iter = 0; iter < 300; ++iter) {
    std::string line;
    const int len = 1 + static_cast<int>(rng.Uniform(48));
    for (int i = 0; i < len; ++i) {
      line += charset[rng.Uniform(static_cast<uint64_t>(charset.size()))];
    }
    const std::string response = client.Call(line);
    // Every answer is a well-formed response line: either a typed error or
    // (for the rare accidentally-valid frame) a served row.
    EXPECT_EQ(response.rfind("{\"ok\":", 0), 0)
        << "input: " << line << " -> " << response;
  }
}

TEST(WireFuzzTest, MalformedCsvFramesGetTypedErrorLines) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Add("demo", "1", FitTinyEngine()).ok());
  ServerOptions options;
  options.format = WireFormat::kCsv;
  ImputationServer server(&registry, options);

  WireSession session(&server);
  EXPECT_EQ(CallSession(session, "color,size,price"), "");  // header
  // Truncated row (too few fields) and padded row (too many).
  EXPECT_EQ(CallSession(session, "red,1").rfind("#error Invalid argument", 0),
            0);
  EXPECT_EQ(
      CallSession(session, "red,,1,extra").rfind("#error Invalid argument", 0),
      0);
  // A valid row after the garbage still serves.
  const std::string served = CallSession(session, "red,,1");
  EXPECT_EQ(served.rfind("#error", 0), std::string::npos) << served;
  EXPECT_NE(served.find("red"), std::string::npos);

  // A header naming a column the schema does not have fails per-row with
  // the offending name in the message.
  WireSession bad_header(&server);
  EXPECT_EQ(CallSession(bad_header, "colour,size,price"), "");
  const std::string bad = CallSession(bad_header, "red,,1");
  EXPECT_EQ(bad.rfind("#error", 0), 0) << bad;
  EXPECT_NE(bad.find("colour"), std::string::npos);
}

}  // namespace
}  // namespace grimp
