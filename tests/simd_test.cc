// Parity tests of the vectorized kernel table against the scalar reference
// across ragged/remainder shapes, plus gradcheck of the fused epilogue tape
// ops at every available SIMD level. Also runs under GRIMP_SIMD=scalar via
// the simd_test_scalar CTest variant (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gradcheck.h"
#include "tensor/nn.h"
#include "tensor/optimizer.h"
#include "tensor/simd.h"
#include "tensor/tape.h"
#include "tensor/tensor.h"

namespace grimp {
namespace {

// Forces a dispatch level for one scope, restoring the previous level on
// exit so tests do not leak state into each other.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : prev_(ActiveSimdLevel()), applied_(SetSimdLevel(level)) {}
  ~ScopedSimdLevel() { SetSimdLevel(prev_); }
  SimdLevel applied() const { return applied_; }

 private:
  SimdLevel prev_;
  SimdLevel applied_;
};

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (SimdAvx2Supported()) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

Tensor RandomTensor(int64_t rows, int64_t cols, Rng* rng) {
  Tensor t = Tensor::Uninit(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = rng->UniformReal(-1.5f, 1.5f);
  }
  return t;
}

// Reference y = relu?(a*b + bias) built from the naive kernel.
Tensor FusedReference(const Tensor& a, const Tensor& b, const Tensor& bias,
                      bool relu) {
  Tensor out = MatMulNaive(a, b);
  for (int64_t r = 0; r < out.rows(); ++r) {
    for (int64_t c = 0; c < out.cols(); ++c) {
      float v = out.at(r, c) + bias[c];
      if (relu && v < 0.0f) v = 0.0f;
      out.at(r, c) = v;
    }
  }
  return out;
}

// Ragged shapes: m/n/k not multiples of the 8/16-wide panels, m=1 row
// vectors, k=1 outer products, and the GNN's real shapes in miniature.
struct Shape {
  int64_t m, k, n;
};
const Shape kShapes[] = {{1, 1, 1},   {1, 17, 5},  {3, 8, 16},  {5, 7, 9},
                         {6, 32, 16}, {7, 33, 31}, {13, 50, 17}, {16, 64, 64},
                         {21, 5, 39}, {64, 32, 3}, {1, 64, 64}};

TEST(SimdDispatchTest, ParseSimdChoice) {
  SimdLevel level;
  bool is_auto = false;
  EXPECT_TRUE(ParseSimdChoice("scalar", &level, &is_auto));
  EXPECT_EQ(level, SimdLevel::kScalar);
  EXPECT_FALSE(is_auto);
  EXPECT_TRUE(ParseSimdChoice("avx2", &level, &is_auto));
  EXPECT_EQ(level, SimdLevel::kAvx2);
  EXPECT_FALSE(is_auto);
  EXPECT_TRUE(ParseSimdChoice("auto", &level, &is_auto));
  EXPECT_TRUE(is_auto);
  EXPECT_FALSE(ParseSimdChoice("", &level, &is_auto));
  EXPECT_FALSE(ParseSimdChoice("sse9", &level, &is_auto));
  EXPECT_FALSE(ParseSimdChoice("AVX2", &level, &is_auto));
}

TEST(SimdDispatchTest, SetLevelRoundTripsAndClamps) {
  const SimdLevel prev = ActiveSimdLevel();
  EXPECT_EQ(SetSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  const SimdLevel applied = SetSimdLevel(SimdLevel::kAvx2);
  if (SimdAvx2Supported()) {
    EXPECT_EQ(applied, SimdLevel::kAvx2);
  } else {
    EXPECT_EQ(applied, SimdLevel::kScalar);  // clamped
  }
  EXPECT_EQ(ActiveSimdLevel(), applied);
  SetSimdLevel(prev);
}

TEST(SimdDispatchTest, LevelNames) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd::ScalarKernels()->name, "scalar");
  if (SimdAvx2Supported()) {
    ASSERT_NE(simd::Avx2Kernels(), nullptr);
    EXPECT_STREQ(simd::Avx2Kernels()->name, "avx2");
  }
}

TEST(SimdGemmTest, MatchesNaiveAcrossShapesAtEveryLevel) {
  Rng rng(11);
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    for (const Shape& s : kShapes) {
      const Tensor a = RandomTensor(s.m, s.k, &rng);
      const Tensor b = RandomTensor(s.k, s.n, &rng);
      EXPECT_TRUE(AllClose(MatMul(a, b), MatMulNaive(a, b), 1e-5f, 1e-4f))
          << SimdLevelName(level) << " gemm " << s.m << "x" << s.k << "x"
          << s.n;
    }
  }
}

TEST(SimdGemmTest, TransposedVariantsMatchNaiveAtEveryLevel) {
  Rng rng(12);
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    for (const Shape& s : kShapes) {
      const Tensor at = RandomTensor(s.k, s.m, &rng);  // A^T walk
      const Tensor b = RandomTensor(s.k, s.n, &rng);
      EXPECT_TRUE(AllClose(MatMulTransA(at, b), MatMulTransANaive(at, b),
                           1e-5f, 1e-4f))
          << SimdLevelName(level) << " transA " << s.m << "x" << s.k << "x"
          << s.n;
      const Tensor a = RandomTensor(s.m, s.k, &rng);
      const Tensor bt = RandomTensor(s.n, s.k, &rng);  // B^T operand
      EXPECT_TRUE(AllClose(MatMulTransB(a, bt), MatMulTransBNaive(a, bt),
                           1e-5f, 1e-4f))
          << SimdLevelName(level) << " transB " << s.m << "x" << s.k << "x"
          << s.n;
    }
  }
}

TEST(SimdGemmTest, FusedEpilogueMatchesUnfusedChain) {
  Rng rng(13);
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    for (const Shape& s : kShapes) {
      const Tensor a = RandomTensor(s.m, s.k, &rng);
      const Tensor b = RandomTensor(s.k, s.n, &rng);
      const Tensor bias = RandomTensor(1, s.n, &rng);
      for (bool relu : {false, true}) {
        EXPECT_TRUE(AllClose(MatMulFused(a, b, bias, relu),
                             FusedReference(a, b, bias, relu), 1e-5f, 1e-4f))
            << SimdLevelName(level) << " fused relu=" << relu << " " << s.m
            << "x" << s.k << "x" << s.n;
      }
    }
  }
}

TEST(SimdGemmTest, AccumulatingVariantsAddIntoOutput) {
  Rng rng(14);
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    for (const Shape& s : kShapes) {
      const Tensor g = RandomTensor(s.m, s.n, &rng);
      const Tensor w = RandomTensor(s.k, s.n, &rng);
      Tensor acc = RandomTensor(s.m, s.k, &rng);
      Tensor expected = acc;
      expected.Axpy(1.0f, MatMulTransBNaive(g, w));
      MatMulTransBAcc(g, w, &acc);
      EXPECT_TRUE(AllClose(acc, expected, 1e-5f, 1e-4f))
          << SimdLevelName(level) << " transBAcc " << s.m << "x" << s.k << "x"
          << s.n;

      const Tensor x = RandomTensor(s.m, s.k, &rng);
      Tensor wacc = RandomTensor(s.k, s.n, &rng);
      Tensor wexpected = wacc;
      wexpected.Axpy(1.0f, MatMulTransANaive(x, g));
      MatMulTransAAcc(x, g, &wacc);
      EXPECT_TRUE(AllClose(wacc, wexpected, 1e-5f, 1e-4f))
          << SimdLevelName(level) << " transAAcc " << s.m << "x" << s.k << "x"
          << s.n;
    }
  }
}

// Elementwise kernels are documented bit-identical across levels: the AVX2
// versions perform the exact scalar arithmetic lane-wise (mul+add, no FMA
// contraction), so EXPECT_EQ per element, not AllClose.
class SimdKernelParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!SimdAvx2Supported()) {
      GTEST_SKIP() << "AVX2 not available; scalar-only build/CPU";
    }
    sk_ = simd::ScalarKernels();
    vk_ = simd::Avx2Kernels();
  }
  const simd::KernelTable* sk_ = nullptr;
  const simd::KernelTable* vk_ = nullptr;
  // Ragged lengths: sub-lane, one lane, lane+tail, strip+tail.
  const std::vector<int64_t> lengths_ = {0, 1, 3, 7, 8, 9, 16, 33, 100, 257};
};

TEST_F(SimdKernelParityTest, ReluKernelsBitIdentical) {
  Rng rng(21);
  for (int64_t n : lengths_) {
    const Tensor x = RandomTensor(1, n, &rng);
    const Tensor g = RandomTensor(1, n, &rng);
    Tensor ys = Tensor::Uninit(1, n), yv = Tensor::Uninit(1, n);
    sk_->relu_fwd(n, x.data(), ys.data());
    vk_->relu_fwd(n, x.data(), yv.data());
    Tensor gs = RandomTensor(1, n, &rng);
    Tensor gv = gs;
    sk_->relu_bwd(n, g.data(), ys.data(), gs.data());
    vk_->relu_bwd(n, g.data(), yv.data(), gv.data());
    Tensor ms = Tensor::Uninit(1, n), mv = Tensor::Uninit(1, n);
    sk_->relu_mask(n, g.data(), ys.data(), ms.data());
    vk_->relu_mask(n, g.data(), yv.data(), mv.data());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(ys[i], yv[i]) << "relu_fwd n=" << n << " i=" << i;
      EXPECT_EQ(gs[i], gv[i]) << "relu_bwd n=" << n << " i=" << i;
      EXPECT_EQ(ms[i], mv[i]) << "relu_mask n=" << n << " i=" << i;
    }
  }
}

TEST_F(SimdKernelParityTest, AxpyScaleColSumBitIdentical) {
  Rng rng(22);
  for (int64_t n : lengths_) {
    const Tensor x = RandomTensor(1, n, &rng);
    Tensor ys = RandomTensor(1, n, &rng);
    Tensor yv = ys;
    sk_->axpy(n, 0.37f, x.data(), ys.data());
    vk_->axpy(n, 0.37f, x.data(), yv.data());
    Tensor ss = RandomTensor(1, n, &rng);
    Tensor sv = ss;
    sk_->scale(n, -1.21f, ss.data());
    vk_->scale(n, -1.21f, sv.data());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(ys[i], yv[i]) << "axpy n=" << n << " i=" << i;
      EXPECT_EQ(ss[i], sv[i]) << "scale n=" << n << " i=" << i;
    }
    const int64_t rows = 5;
    const Tensor m = RandomTensor(rows, n, &rng);
    Tensor accs = RandomTensor(1, n, &rng);
    Tensor accv = accs;
    sk_->col_sum_acc(rows, n, m.data(), accs.data());
    vk_->col_sum_acc(rows, n, m.data(), accv.data());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(accs[i], accv[i]) << "col_sum_acc n=" << n << " i=" << i;
    }
  }
}

TEST_F(SimdKernelParityTest, OptimizerAndMseBwdKernelsBitIdentical) {
  Rng rng(23);
  for (int64_t n : lengths_) {
    const Tensor g = RandomTensor(1, n, &rng);
    Tensor ms = RandomTensor(1, n, &rng), mv = ms;
    Tensor vs = Tensor::Full(1, n, 0.5f), vv = vs;
    Tensor ws = RandomTensor(1, n, &rng), wv = ws;
    sk_->adam_step(n, 1e-3f, 0.9f, 0.999f, 1e-8f, 0.01f, 0.1f, 0.001f,
                   g.data(), ms.data(), vs.data(), ws.data());
    vk_->adam_step(n, 1e-3f, 0.9f, 0.999f, 1e-8f, 0.01f, 0.1f, 0.001f,
                   g.data(), mv.data(), vv.data(), wv.data());
    Tensor vels = RandomTensor(1, n, &rng), velv = vels;
    Tensor sws = RandomTensor(1, n, &rng), swv = sws;
    sk_->sgd_momentum(n, 0.01f, 0.9f, g.data(), vels.data(), sws.data());
    vk_->sgd_momentum(n, 0.01f, 0.9f, g.data(), velv.data(), swv.data());
    const Tensor pred = RandomTensor(1, n, &rng);
    const Tensor tgt = RandomTensor(1, n, &rng);
    Tensor pgs = RandomTensor(1, n, &rng), pgv = pgs;
    sk_->mse_bwd(n, 0.43f, pred.data(), tgt.data(), nullptr, pgs.data());
    vk_->mse_bwd(n, 0.43f, pred.data(), tgt.data(), nullptr, pgv.data());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_EQ(ms[i], mv[i]) << "adam m n=" << n << " i=" << i;
      EXPECT_EQ(vs[i], vv[i]) << "adam v n=" << n << " i=" << i;
      EXPECT_EQ(ws[i], wv[i]) << "adam w n=" << n << " i=" << i;
      EXPECT_EQ(vels[i], velv[i]) << "sgd vel n=" << n << " i=" << i;
      EXPECT_EQ(sws[i], swv[i]) << "sgd w n=" << n << " i=" << i;
      EXPECT_EQ(pgs[i], pgv[i]) << "mse_bwd n=" << n << " i=" << i;
    }
  }
}

TEST_F(SimdKernelParityTest, ReductionKernelsAgreeWithinTolerance) {
  Rng rng(24);
  for (int64_t n : lengths_) {
    const Tensor x = RandomTensor(1, n, &rng);
    const double sq_s = sk_->sum_squares(n, x.data());
    const double sq_v = vk_->sum_squares(n, x.data());
    EXPECT_NEAR(sq_s, sq_v, 1e-6 * (1.0 + std::fabs(sq_s))) << "n=" << n;
    const Tensor pred = RandomTensor(1, n, &rng);
    const Tensor tgt = RandomTensor(1, n, &rng);
    int64_t valid_s = -1, valid_v = -1;
    const double mse_s = sk_->mse_sum(n, pred.data(), tgt.data(), nullptr,
                                      &valid_s);
    const double mse_v = vk_->mse_sum(n, pred.data(), tgt.data(), nullptr,
                                      &valid_v);
    EXPECT_EQ(valid_s, valid_v);
    EXPECT_NEAR(mse_s, mse_v, 1e-6 * (1.0 + std::fabs(mse_s))) << "n=" << n;
    // Masked path (every third row dropped).
    Tensor mask = Tensor::Uninit(1, n);
    for (int64_t i = 0; i < n; ++i) mask[i] = (i % 3 == 0) ? 0.0f : 1.0f;
    const double mm_s = sk_->mse_sum(n, pred.data(), tgt.data(), mask.data(),
                                     &valid_s);
    const double mm_v = vk_->mse_sum(n, pred.data(), tgt.data(), mask.data(),
                                     &valid_v);
    EXPECT_EQ(valid_s, valid_v);
    EXPECT_NEAR(mm_s, mm_v, 1e-6 * (1.0 + std::fabs(mm_s))) << "n=" << n;
  }
}

TEST_F(SimdKernelParityTest, SegmentMeanAgreesIncludingEmptySegments) {
  Rng rng(25);
  for (int64_t d : {1, 5, 8, 17, 32, 40}) {
    const Tensor x = RandomTensor(9, d, &rng);
    // Segments: normal, empty, singleton, duplicate-index, empty tail.
    const std::vector<int32_t> offsets = {0, 3, 3, 4, 8, 8};
    const std::vector<int32_t> indices = {0, 2, 4, 7, 1, 1, 5, 8};
    const int64_t segs = static_cast<int64_t>(offsets.size()) - 1;
    Tensor outs = Tensor::Full(segs, d, -99.0f);
    Tensor outv = Tensor::Full(segs, d, -99.0f);
    sk_->segment_mean_fwd(offsets.data(), indices.data(), x.data(), d, 0,
                          segs, outs.data());
    vk_->segment_mean_fwd(offsets.data(), indices.data(), x.data(), d, 0,
                          segs, outv.data());
    EXPECT_TRUE(AllClose(outs, outv, 1e-5f, 1e-4f)) << "d=" << d;
    // Empty segments must be zeroed, not left unwritten.
    for (int64_t c = 0; c < d; ++c) {
      EXPECT_EQ(outs.at(1, c), 0.0f);
      EXPECT_EQ(outv.at(1, c), 0.0f);
      EXPECT_EQ(outv.at(4, c), 0.0f);
    }
  }
}

TEST_F(SimdKernelParityTest, RowSoftmaxAgreesAndNormalizes) {
  Rng rng(26);
  for (int64_t cols : {1, 2, 5, 8, 9, 17, 64}) {
    const int64_t rows = 7;
    const Tensor x = RandomTensor(rows, cols, &rng);
    Tensor ys = Tensor::Uninit(rows, cols);
    Tensor yv = Tensor::Uninit(rows, cols);
    sk_->row_softmax(rows, cols, x.data(), ys.data());
    vk_->row_softmax(rows, cols, x.data(), yv.data());
    EXPECT_TRUE(AllClose(ys, yv, 1e-5f, 1e-4f)) << "cols=" << cols;
    for (int64_t r = 0; r < rows; ++r) {
      float sum = 0.0f;
      for (int64_t c = 0; c < cols; ++c) {
        EXPECT_GE(yv.at(r, c), 0.0f);
        sum += yv.at(r, c);
      }
      EXPECT_NEAR(sum, 1.0f, 1e-5f) << "cols=" << cols << " r=" << r;
    }
  }
}

// Gradcheck of the fused tape ops at every available level: Linear /
// LinearRelu must match AddBias(MatMul)+Relu both in value and in all three
// gradients.
TEST(SimdFusedOpsTest, LinearGradcheckAtEveryLevel) {
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    for (bool relu : {false, true}) {
      Rng rng(31);
      Parameter w("w", Tensor::GlorotUniform(7, 5, &rng));
      Parameter b("b", Tensor::RandomNormal(1, 5, 0.5f, &rng));
      const Tensor x = RandomTensor(9, 7, &rng);
      std::vector<float> targets(9);
      for (auto& t : targets) t = rng.UniformReal(-1.0f, 1.0f);
      auto loss_fn = [&](Parameter* p) {
        return [&, p](bool compute_grad) {
          Tape tape;
          Tape::VarId xv = tape.Constant(x);
          Tape::VarId wv = tape.Leaf(&w);
          Tape::VarId bv = tape.Leaf(&b);
          Tape::VarId h =
              relu ? tape.LinearRelu(xv, wv, bv) : tape.Linear(xv, wv, bv);
          // Reduce to N x 1 via a second plain matmul so MseLoss applies.
          Tensor ones = Tensor::Full(5, 1, 1.0f);
          Tape::VarId pred = tape.MatMul(h, tape.Constant(std::move(ones)));
          Tape::VarId loss = tape.MseLoss(pred, &targets);
          if (compute_grad) tape.Backward(loss);
          (void)p;
          return tape.value(loss).scalar();
        };
      };
      EXPECT_LT(testing::MaxGradError(&w, loss_fn(&w)), 2e-2f)
          << SimdLevelName(level) << " relu=" << relu << " dW";
      EXPECT_LT(testing::MaxGradError(&b, loss_fn(&b)), 2e-2f)
          << SimdLevelName(level) << " relu=" << relu << " db";
    }
  }
}

TEST(SimdFusedOpsTest, LinearMatchesUnfusedChainAtEveryLevel) {
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    Rng rng(32);
    Parameter w("w", Tensor::GlorotUniform(6, 10, &rng));
    Parameter b("b", Tensor::RandomNormal(1, 10, 0.5f, &rng));
    const Tensor x = RandomTensor(11, 6, &rng);

    auto run = [&](bool fused, bool relu, Tensor* dw, Tensor* db) {
      w.ZeroGrad();
      b.ZeroGrad();
      Tape tape;
      Tape::VarId xv = tape.Constant(x);
      Tape::VarId wv = tape.Leaf(&w);
      Tape::VarId bv = tape.Leaf(&b);
      Tape::VarId h;
      if (fused) {
        h = relu ? tape.LinearRelu(xv, wv, bv) : tape.Linear(xv, wv, bv);
      } else {
        h = tape.AddBias(tape.MatMul(xv, wv), bv);
        if (relu) h = tape.Relu(h);
      }
      Tape::VarId loss = tape.SumAll(h);
      tape.Backward(loss);
      *dw = w.grad;
      *db = b.grad;
      return tape.value(h);
    };

    for (bool relu : {false, true}) {
      Tensor dw_f, db_f, dw_u, db_u;
      const Tensor y_f = run(/*fused=*/true, relu, &dw_f, &db_f);
      const Tensor y_u = run(/*fused=*/false, relu, &dw_u, &db_u);
      EXPECT_TRUE(AllClose(y_f, y_u, 1e-5f, 1e-4f))
          << SimdLevelName(level) << " relu=" << relu << " forward";
      EXPECT_TRUE(AllClose(dw_f, dw_u, 1e-4f, 1e-3f))
          << SimdLevelName(level) << " relu=" << relu << " dW";
      EXPECT_TRUE(AllClose(db_f, db_u, 1e-4f, 1e-3f))
          << SimdLevelName(level) << " relu=" << relu << " db";
    }
  }
}

TEST(SimdFusedOpsTest, SegmentMeanGradcheckAtEveryLevel) {
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    Rng rng(33);
    Parameter table("t", Tensor::GlorotUniform(6, 9, &rng));
    const std::vector<int32_t> offsets = {0, 2, 2, 5};
    const std::vector<int32_t> indices = {0, 3, 1, 1, 5};
    std::vector<float> targets = {0.3f, -0.2f, 0.9f};
    auto loss_fn = [&](bool compute_grad) {
      Tape tape;
      Tape::VarId t = tape.Leaf(&table);
      Tape::VarId sm = tape.SegmentMean(t, &offsets, &indices);
      Tensor ones = Tensor::Full(9, 1, 1.0f);
      Tape::VarId pred = tape.MatMul(sm, tape.Constant(std::move(ones)));
      Tape::VarId loss = tape.MseLoss(pred, &targets);
      if (compute_grad) tape.Backward(loss);
      return tape.value(loss).scalar();
    };
    EXPECT_LT(testing::MaxGradError(&table, loss_fn), 2e-2f)
        << SimdLevelName(level);
  }
}

TEST(SimdFusedOpsTest, MlpForwardIdenticalAcrossFusionAtEveryLevel) {
  // The Mlp now records LinearRelu nodes; its output must match the same
  // weights applied through the unfused op chain.
  for (SimdLevel level : AvailableLevels()) {
    ScopedSimdLevel guard(level);
    Rng rng(34);
    Mlp mlp("m", {5, 8, 3}, &rng);
    const Tensor x = RandomTensor(13, 5, &rng);
    Tape tape;
    Tape::VarId out = mlp.Forward(&tape, tape.Constant(x));
    std::vector<Parameter*> params;
    mlp.CollectParameters(&params);
    ASSERT_EQ(params.size(), 4u);  // 2 layers x (W, b)
    Tape tape2;
    Tape::VarId h = tape2.Constant(x);
    Tape::VarId w0 = tape2.Leaf(params[0]);
    Tape::VarId b0 = tape2.Leaf(params[1]);
    h = tape2.Relu(tape2.AddBias(tape2.MatMul(h, w0), b0));
    Tape::VarId w1 = tape2.Leaf(params[2]);
    Tape::VarId b1 = tape2.Leaf(params[3]);
    h = tape2.AddBias(tape2.MatMul(h, w1), b1);
    EXPECT_TRUE(AllClose(tape.value(out), tape2.value(h), 1e-5f, 1e-4f))
        << SimdLevelName(level);
  }
}

TEST(SimdFusedOpsTest, OptimizersBitIdenticalAcrossLevels) {
  if (!SimdAvx2Supported()) {
    GTEST_SKIP() << "AVX2 not available";
  }
  // One Adam + ClipGradNorm step at each level from identical state: the
  // optimizer kernels are in the bit-identical group; ClipGradNorm's norm
  // uses sum_squares (tolerance group), so compare with a tight bound.
  auto run = [&](SimdLevel level, Tensor* out) {
    ScopedSimdLevel guard(level);
    Rng rng(35);
    Parameter p("p", Tensor::GlorotUniform(17, 9, &rng));
    for (int64_t i = 0; i < p.grad.size(); ++i) {
      p.grad[i] = rng.UniformReal(-3.0f, 3.0f);
    }
    Adam adam({&p}, 1e-2f, 0.9f, 0.999f, 1e-8f, 0.01f);
    adam.ClipGradNorm(1.0f);
    adam.Step();
    *out = p.value;
  };
  Tensor scalar_w, avx2_w;
  run(SimdLevel::kScalar, &scalar_w);
  run(SimdLevel::kAvx2, &avx2_w);
  EXPECT_TRUE(AllClose(avx2_w, scalar_w, 1e-6f, 1e-6f));
}

}  // namespace
}  // namespace grimp
