#include <gtest/gtest.h>

#include "table/stats.h"

namespace grimp {
namespace {

TEST(StatsTest, SkewnessOfSymmetricSampleIsZero) {
  EXPECT_NEAR(Skewness({1, 2, 3, 4, 5}), 0.0, 1e-12);
  EXPECT_NEAR(Skewness({-2, 0, 2}), 0.0, 1e-12);
}

TEST(StatsTest, SkewnessSign) {
  // Long right tail -> positive skew.
  EXPECT_GT(Skewness({1, 1, 1, 1, 10}), 0.0);
  EXPECT_LT(Skewness({-10, 1, 1, 1, 1}), 0.0);
}

TEST(StatsTest, SkewnessDegenerateCases) {
  EXPECT_EQ(Skewness({}), 0.0);
  EXPECT_EQ(Skewness({5}), 0.0);
  EXPECT_EQ(Skewness({2, 2, 2}), 0.0);  // zero variance
}

TEST(StatsTest, ExcessKurtosisOfUniformIsNegative) {
  std::vector<double> uniform;
  for (int i = 0; i < 100; ++i) uniform.push_back(i);
  // Continuous uniform has excess kurtosis -1.2.
  EXPECT_NEAR(ExcessKurtosis(uniform), -1.2, 0.05);
}

TEST(StatsTest, ExcessKurtosisHeavyTailIsPositive) {
  std::vector<double> sample(100, 0.0);
  sample[0] = 50.0;
  sample[1] = -50.0;
  EXPECT_GT(ExcessKurtosis(sample), 0.0);
}

TEST(StatsTest, PearsonCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  for (double& v : y) v = -v;
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);  // zero variance
}

Table SkewedTable() {
  Schema schema({{"c", AttrType::kCategorical}});
  Table t(schema);
  // "a" x 8, "b" x 1, "c" x 1: one dominant value.
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(t.AppendRow({"a"}).ok());
  EXPECT_TRUE(t.AppendRow({"b"}).ok());
  EXPECT_TRUE(t.AppendRow({"c"}).ok());
  return t;
}

TEST(StatsTest, ColumnStatsFrequentValues) {
  Table t = SkewedTable();
  ColumnStats cs = ComputeColumnStats(t, 0);
  EXPECT_EQ(cs.num_distinct, 3);
  // Counts are {8,1,1}: q90 over sorted {1,1,8} picks 8's predecessor, so
  // only "a" (count 8 > 1) is frequent.
  EXPECT_EQ(cs.num_frequent, 1);
  EXPECT_NEAR(cs.frequent_fraction, 0.8, 1e-12);
  EXPECT_GT(cs.skewness, 0.0);  // frequency distribution is right-skewed
}

TEST(StatsTest, ColumnStatsUniformColumnFallsBackToMode) {
  Schema schema({{"c", AttrType::kCategorical}});
  Table t(schema);
  for (const char* v : {"x", "y", "z", "x", "y", "z"}) {
    ASSERT_TRUE(t.AppendRow({v}).ok());
  }
  ColumnStats cs = ComputeColumnStats(t, 0);
  // All equally frequent: modal values are treated as frequent.
  EXPECT_EQ(cs.num_frequent, 3);
  EXPECT_NEAR(cs.frequent_fraction, 1.0, 1e-12);
  EXPECT_NEAR(cs.skewness, 0.0, 1e-12);
}

TEST(StatsTest, TableStatsAggregates) {
  Table t = SkewedTable();
  TableStats ts = ComputeTableStats(t);
  EXPECT_EQ(ts.num_rows, 10);
  EXPECT_EQ(ts.num_cols, 1);
  EXPECT_EQ(ts.num_categorical, 1);
  EXPECT_EQ(ts.num_distinct, 3);
  ASSERT_EQ(ts.columns.size(), 1u);
  EXPECT_DOUBLE_EQ(ts.frequent_frac_avg, ts.columns[0].frequent_fraction);
}

// The paper's parameter-count formulas must reproduce Table 1 exactly for
// every dataset (|C| is the column count of each dataset).
struct ParamCountCase {
  const char* dataset;
  int num_cols;
  int64_t shared;
  int64_t linear;
  int64_t attention;
};

class ParameterCountTest : public ::testing::TestWithParam<ParamCountCase> {};

TEST_P(ParameterCountTest, MatchesPaperTable1) {
  const ParamCountCase& c = GetParam();
  const ParameterCounts pc = ComputeParameterCounts(c.num_cols);
  EXPECT_EQ(pc.shared, c.shared) << c.dataset;
  EXPECT_EQ(pc.linear, c.linear) << c.dataset;
  EXPECT_EQ(pc.attention, c.attention) << c.dataset;
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, ParameterCountTest,
    ::testing::Values(ParamCountCase{"Adult", 14, 2048, 5632, 8572},
                      ParamCountCase{"Australian", 15, 2176, 6016, 9616},
                      ParamCountCase{"Contraceptive", 10, 1536, 4096, 5196},
                      ParamCountCase{"Credit", 16, 2304, 6400, 10752},
                      ParamCountCase{"Flare", 13, 1920, 5248, 7614},
                      ParamCountCase{"IMDB", 11, 1664, 4480, 5932},
                      ParamCountCase{"Mammogram", 6, 1024, 2560, 2812},
                      ParamCountCase{"Tax", 12, 1792, 4864, 6736},
                      ParamCountCase{"Thoracic", 17, 2432, 6784, 11986},
                      ParamCountCase{"TicTacToe", 9, 1408, 3712, 4522}),
    [](const ::testing::TestParamInfo<ParamCountCase>& info) {
      return info.param.dataset;
    });

}  // namespace
}  // namespace grimp
