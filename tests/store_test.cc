// Tests for the out-of-core graph storage layer: GraphShard slicing and
// its checksummed on-disk format, the InMemoryGraphStore /
// ShardedGraphStore implementations behind the GraphStore API, the
// MakeGraphStore factory, and shard-count invariance of the neighbor
// sampler.

#include "graph/store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/names.h"
#include "graph/sampler.h"

namespace grimp {
namespace {

// A ring graph with `types` edge types: under type t, node i is connected
// to (i + t + 1) mod n, both directions, so every node has degree 2 per
// type and every shard slice has edges crossing its boundary.
HeteroGraph RingGraph(int64_t n, int types) {
  HeteroGraph g;
  for (int64_t i = 0; i < n; ++i) g.AddNode(NodeInfo{});
  std::vector<CsrAdjacency> adj;
  for (int t = 0; t < types; ++t) {
    std::vector<std::pair<int32_t, int32_t>> edges;
    for (int64_t i = 0; i < n; ++i) {
      const auto u = static_cast<int32_t>(i);
      const auto v = static_cast<int32_t>((i + t + 1) % n);
      edges.emplace_back(u, v);
      edges.emplace_back(v, u);
    }
    adj.push_back(CsrAdjacency::FromEdges(n, edges));
  }
  g.SetAdjacency(std::move(adj));
  return g;
}

std::set<int32_t> ShardNeighbors(const GraphShard& shard, int t,
                                 int64_t node) {
  std::set<int32_t> out;
  auto [b, e] = shard.Neighbors(t, node);
  for (const int32_t* p = b; p < e; ++p) out.insert(*p);
  return out;
}

std::set<int32_t> GraphNeighbors(const HeteroGraph& g, int t, int64_t node) {
  std::set<int32_t> out;
  const auto [b, e] = g.adjacency(t).NeighborRange(node);
  for (int32_t k = b; k < e; ++k) {
    out.insert(g.adjacency(t).indices()[static_cast<size_t>(k)]);
  }
  return out;
}

// --- GraphShard ------------------------------------------------------------

TEST(GraphShardTest, SliceMatchesSourceGraph) {
  const HeteroGraph g = RingGraph(20, 2);
  const GraphShard shard = GraphShard::Slice(g, 5, 12);
  EXPECT_EQ(shard.begin(), 5);
  EXPECT_EQ(shard.end(), 12);
  EXPECT_EQ(shard.num_local_nodes(), 7);
  EXPECT_EQ(shard.num_edge_types(), 2);
  EXPECT_FALSE(shard.Contains(4));
  EXPECT_TRUE(shard.Contains(5));
  for (int t = 0; t < 2; ++t) {
    for (int64_t node = 5; node < 12; ++node) {
      EXPECT_EQ(ShardNeighbors(shard, t, node), GraphNeighbors(g, t, node))
          << "type " << t << " node " << node;
    }
  }
}

TEST(GraphShardTest, ViewCoversWholeGraphZeroCopy) {
  const HeteroGraph g = RingGraph(16, 2);
  const GraphShard view = GraphShard::View(g);
  EXPECT_EQ(view.begin(), 0);
  EXPECT_EQ(view.end(), g.num_nodes());
  EXPECT_EQ(view.num_edges(), g.TotalEdges());
  for (int t = 0; t < 2; ++t) {
    for (int64_t node = 0; node < g.num_nodes(); ++node) {
      EXPECT_EQ(ShardNeighbors(view, t, node), GraphNeighbors(g, t, node));
    }
  }
}

TEST(GraphShardTest, WriteReadRoundTrip) {
  const HeteroGraph g = RingGraph(24, 3);
  const GraphShard shard = GraphShard::Slice(g, 8, 17);
  const std::string path = testing::TempDir() + "grimp_shard_roundtrip.bin";
  ASSERT_TRUE(shard.WriteTo(path).ok());

  auto loaded = GraphShard::ReadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->begin(), shard.begin());
  EXPECT_EQ(loaded->end(), shard.end());
  EXPECT_EQ(loaded->num_edge_types(), shard.num_edge_types());
  EXPECT_EQ(loaded->num_edges(), shard.num_edges());
  EXPECT_EQ(loaded->SizeBytes(), shard.SizeBytes());
  for (int t = 0; t < 3; ++t) {
    for (int64_t node = 8; node < 17; ++node) {
      EXPECT_EQ(ShardNeighbors(*loaded, t, node),
                ShardNeighbors(shard, t, node));
    }
  }
  std::remove(path.c_str());
}

TEST(GraphShardTest, CorruptedFileIsRejected) {
  const HeteroGraph g = RingGraph(24, 2);
  const GraphShard shard = GraphShard::Slice(g, 0, 24);
  const std::string path = testing::TempDir() + "grimp_shard_corrupt.bin";
  ASSERT_TRUE(shard.WriteTo(path).ok());

  // Flip one byte in the middle of the payload: the trailing checksum must
  // catch it before any array is adopted.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(40);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(GraphShard::ReadFrom(path).ok());
  std::remove(path.c_str());
}

// --- InMemoryGraphStore ----------------------------------------------------

TEST(InMemoryGraphStoreTest, SingleShardOverBorrowedGraph) {
  const HeteroGraph g = RingGraph(10, 2);
  const InMemoryGraphStore store(&g);
  EXPECT_EQ(store.num_nodes(), 10);
  EXPECT_EQ(store.num_edge_types(), 2);
  EXPECT_EQ(store.num_shards(), 1);
  EXPECT_EQ(store.ShardOf(0), 0);
  EXPECT_EQ(store.ShardOf(9), 0);
  EXPECT_EQ(store.full_graph(), &g);
  EXPECT_GT(store.total_bytes(), 0);

  const ShardScope scope = store.Acquire(0);
  ASSERT_NE(scope.get(), nullptr);
  EXPECT_EQ(scope->begin(), 0);
  EXPECT_EQ(scope->end(), 10);
  EXPECT_EQ(ShardNeighbors(*scope, 0, 3), GraphNeighbors(g, 0, 3));
}

// --- ShardedGraphStore -----------------------------------------------------

ShardedGraphStore::Options StoreOptions(int shards, int64_t budget) {
  ShardedGraphStore::Options o;
  o.num_shards = shards;
  o.max_resident_bytes = budget;
  return o;
}

TEST(ShardedGraphStoreTest, BoundariesPartitionTheNodeRange) {
  const HeteroGraph g = RingGraph(100, 2);
  auto store = ShardedGraphStore::Create(g, StoreOptions(4, 1ll << 30));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_shards(), 4);
  EXPECT_EQ((*store)->num_nodes(), 100);

  int64_t covered = 0;
  for (int s = 0; s < 4; ++s) {
    const ShardScope scope = (*store)->Acquire(s);
    ASSERT_NE(scope.get(), nullptr);
    EXPECT_EQ(scope->begin(), covered) << "gap before shard " << s;
    EXPECT_GT(scope->end(), scope->begin());
    covered = scope->end();
    for (int64_t node = scope->begin(); node < scope->end(); ++node) {
      EXPECT_EQ((*store)->ShardOf(node), s);
    }
  }
  EXPECT_EQ(covered, 100);
}

TEST(ShardedGraphStoreTest, ReloadedShardsMatchTheSourceGraph) {
  const HeteroGraph g = RingGraph(60, 3);
  auto store = ShardedGraphStore::Create(g, StoreOptions(5, 1ll << 30));
  ASSERT_TRUE(store.ok());
  for (int s = 0; s < (*store)->num_shards(); ++s) {
    const ShardScope scope = (*store)->Acquire(s);
    for (int64_t node = scope->begin(); node < scope->end(); ++node) {
      for (int t = 0; t < 3; ++t) {
        EXPECT_EQ(ShardNeighbors(*scope, t, node), GraphNeighbors(g, t, node))
            << "shard " << s << " type " << t << " node " << node;
      }
    }
  }
}

TEST(ShardedGraphStoreTest, BudgetBoundsTheResidentSet) {
  const HeteroGraph g = RingGraph(400, 2);
  // Budget for roughly a quarter of the graph across 8 shards: serial
  // acquires must evict to stay under it.
  auto probe = ShardedGraphStore::Create(g, StoreOptions(8, 1ll << 30));
  ASSERT_TRUE(probe.ok());
  const int64_t total = (*probe)->total_bytes();
  const int64_t budget = total / 4;

  auto store = ShardedGraphStore::Create(g, StoreOptions(8, budget));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->total_bytes(), total);
  for (int round = 0; round < 2; ++round) {
    for (int s = 0; s < 8; ++s) {
      const ShardScope scope = (*store)->Acquire(s);
      ASSERT_NE(scope.get(), nullptr);
      EXPECT_LE((*store)->resident_bytes(), budget);
    }
  }
  EXPECT_LE((*store)->high_water_bytes(), budget);
  EXPECT_LT((*store)->high_water_bytes(), total);
}

TEST(ShardedGraphStoreTest, PinnedShardSurvivesEvictionChurn) {
  const HeteroGraph g = RingGraph(240, 2);
  auto probe = ShardedGraphStore::Create(g, StoreOptions(6, 1ll << 30));
  ASSERT_TRUE(probe.ok());
  const int64_t budget = (*probe)->total_bytes() / 3;

  auto store = ShardedGraphStore::Create(g, StoreOptions(6, budget));
  ASSERT_TRUE(store.ok());
  const ShardScope pinned = (*store)->Acquire(0);
  const std::set<int32_t> before = ShardNeighbors(*pinned, 0, 0);
  // Churn through every other shard under a budget that forces evictions;
  // the pin must keep shard 0's buffers untouched.
  for (int round = 0; round < 2; ++round) {
    for (int s = 1; s < 6; ++s) {
      const ShardScope scope = (*store)->Acquire(s);
      ASSERT_NE(scope.get(), nullptr);
    }
  }
  EXPECT_EQ(ShardNeighbors(*pinned, 0, 0), before);
  EXPECT_EQ(ShardNeighbors(*pinned, 0, 0), GraphNeighbors(g, 0, 0));
}

TEST(ShardedGraphStoreTest, LoneOversizedShardStillLoads) {
  const HeteroGraph g = RingGraph(50, 2);
  // A budget smaller than any single shard: the budget bounds the steady
  // state, not one shard, so acquires must still succeed.
  auto store = ShardedGraphStore::Create(g, StoreOptions(3, 1));
  ASSERT_TRUE(store.ok());
  for (int s = 0; s < 3; ++s) {
    const ShardScope scope = (*store)->Acquire(s);
    ASSERT_NE(scope.get(), nullptr);
    EXPECT_GT(scope->num_local_nodes(), 0);
  }
}

TEST(ShardedGraphStoreTest, PrefetchIsBestEffortAndKeepsParity) {
  const HeteroGraph g = RingGraph(120, 2);
  auto probe = ShardedGraphStore::Create(g, StoreOptions(6, 1ll << 30));
  ASSERT_TRUE(probe.ok());
  const int64_t budget = (*probe)->total_bytes() / 2;

  auto store = ShardedGraphStore::Create(g, StoreOptions(6, budget));
  ASSERT_TRUE(store.ok());
  (*store)->Prefetch({0, 1, 2, 3, 4, 5});
  EXPECT_LE((*store)->resident_bytes(), budget);
  for (int s = 0; s < 6; ++s) {
    const ShardScope scope = (*store)->Acquire(s);
    for (int64_t node = scope->begin(); node < scope->end(); ++node) {
      EXPECT_EQ(ShardNeighbors(*scope, 0, node), GraphNeighbors(g, 0, node));
    }
  }
}

// When pins hold the whole budget, Prefetch must decline (counted as
// graph.shard.prefetch_skipped) instead of evicting pinned shards or
// thrashing the LRU; demand loads still serve the shard later.
TEST(ShardedGraphStoreTest, PrefetchDeclinesWhenPinsHoldTheBudget) {
  const HeteroGraph g = RingGraph(240, 2);
  auto probe = ShardedGraphStore::Create(g, StoreOptions(6, 1ll << 30));
  ASSERT_TRUE(probe.ok());
  const int64_t budget = (*probe)->total_bytes() / 3;

  auto store = ShardedGraphStore::Create(g, StoreOptions(6, budget));
  ASSERT_TRUE(store.ok());
  // Three pins exceed the ~2-shard budget (demand loads always succeed);
  // nothing resident is evictable while they are held.
  ShardScope pin0 = (*store)->Acquire(0);
  ShardScope pin1 = (*store)->Acquire(1);
  ShardScope pin2 = (*store)->Acquire(2);
  const std::set<int32_t> before = ShardNeighbors(*pin0, 0, 0);
  const int64_t resident_before = (*store)->resident_bytes();

  MetricsRegistry& registry = MetricsRegistry::Global();
  const double skipped_before =
      registry.GetCounter("graph.shard.prefetch_skipped").value();
  const double evictions_before =
      registry.GetCounter("graph.shard.evictions").value();
  (*store)->Prefetch({3, 4, 5});
  EXPECT_DOUBLE_EQ(
      registry.GetCounter("graph.shard.prefetch_skipped").value(),
      skipped_before + 3.0);
  EXPECT_DOUBLE_EQ(registry.GetCounter("graph.shard.evictions").value(),
                   evictions_before);
  // Declined means declined: the resident set did not move and the pinned
  // adjacency is untouched.
  EXPECT_EQ((*store)->resident_bytes(), resident_before);
  EXPECT_EQ(ShardNeighbors(*pin0, 0, 0), before);

  // The skipped shards still demand-load once the pins are gone.
  pin0.Release();
  pin1.Release();
  pin2.Release();
  for (int s = 3; s < 6; ++s) {
    const ShardScope scope = (*store)->Acquire(s);
    ASSERT_NE(scope.get(), nullptr);
    for (int64_t node = scope->begin(); node < scope->end(); ++node) {
      EXPECT_EQ(ShardNeighbors(*scope, 0, node), GraphNeighbors(g, 0, node));
    }
  }
}

TEST(ShardedGraphStoreTest, AutoShardCountScalesWithBudget) {
  const HeteroGraph g = RingGraph(300, 2);
  auto probe = ShardedGraphStore::Create(g, StoreOptions(1, 1ll << 30));
  ASSERT_TRUE(probe.ok());
  const int64_t total = (*probe)->total_bytes();

  // num_shards = 0: auto-derived as ~4 shards per budget's worth, so the
  // LRU always has room to rotate.
  auto store = ShardedGraphStore::Create(g, StoreOptions(0, total / 2));
  ASSERT_TRUE(store.ok());
  EXPECT_GE((*store)->num_shards(), 4);
}

// --- MakeGraphStore factory ------------------------------------------------

TEST(MakeGraphStoreTest, InMemoryModeExposesTheFullGraph) {
  const HeteroGraph g = RingGraph(30, 2);
  GraphConfig config;  // defaults: kInMemory
  auto store = MakeGraphStore(g, config);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->full_graph(), &g);
  EXPECT_EQ((*store)->num_shards(), 1);
}

TEST(MakeGraphStoreTest, ShardedModeHasNoFullGraph) {
  const HeteroGraph g = RingGraph(30, 2);
  GraphConfig config;
  config.shard_mode = ShardMode::kSharded;
  config.num_shards = 3;
  auto store = MakeGraphStore(g, config);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->full_graph(), nullptr);
  EXPECT_EQ((*store)->num_shards(), 3);
  EXPECT_EQ((*store)->num_nodes(), g.num_nodes());
}

TEST(GraphConfigTest, ValidateRejectsBadKnobs) {
  GraphConfig config;
  config.num_shards = -1;
  EXPECT_FALSE(config.Validate().ok());
  config = GraphConfig{};
  config.shard_mode = ShardMode::kSharded;
  config.max_resident_bytes = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = GraphConfig{};
  config.neighbor_cap = -2;
  EXPECT_FALSE(config.Validate().ok());
  EXPECT_TRUE(GraphConfig{}.Validate().ok());
}

TEST(ShardModeNamesTest, RoundTrip) {
  for (ShardMode mode : {ShardMode::kInMemory, ShardMode::kSharded}) {
    auto parsed = ParseShardMode(ShardModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(ParseShardMode("mmap").ok());
}

// --- Sampler invariance across stores --------------------------------------

void ExpectSameSubgraph(const SampledSubgraph& a, const SampledSubgraph& b) {
  EXPECT_EQ(a.input_nodes, b.input_nodes);
  EXPECT_EQ(a.output_nodes, b.output_nodes);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (size_t l = 0; l < a.blocks.size(); ++l) {
    EXPECT_EQ(a.blocks[l].num_src, b.blocks[l].num_src);
    EXPECT_EQ(a.blocks[l].num_dst, b.blocks[l].num_dst);
    ASSERT_EQ(a.blocks[l].adjacency.size(), b.blocks[l].adjacency.size());
    for (size_t t = 0; t < a.blocks[l].adjacency.size(); ++t) {
      EXPECT_EQ(a.blocks[l].adjacency[t].offsets(),
                b.blocks[l].adjacency[t].offsets());
      EXPECT_EQ(a.blocks[l].adjacency[t].indices(),
                b.blocks[l].adjacency[t].indices());
    }
  }
}

TEST(SamplerStoreParityTest, BitIdenticalAcrossShardCounts) {
  const HeteroGraph g = RingGraph(80, 3);
  const InMemoryGraphStore in_memory(&g);
  const NeighborSampler reference(&in_memory, {2, 3});

  const std::vector<int32_t> seeds{0, 17, 42, 79, 33};
  Rng ref_rng(1234);
  const SampledSubgraph expected = reference.Sample(seeds, &ref_rng);

  for (int shards : {2, 5, 13}) {
    auto store = ShardedGraphStore::Create(g, StoreOptions(shards, 1ll << 30));
    ASSERT_TRUE(store.ok());
    const NeighborSampler sampler(store->get(), {2, 3});
    Rng rng(1234);
    const SampledSubgraph got = sampler.Sample(seeds, &rng);
    ExpectSameSubgraph(expected, got);
  }
}

TEST(SamplerStoreParityTest, TightBudgetDoesNotChangeDraws) {
  const HeteroGraph g = RingGraph(80, 2);
  const InMemoryGraphStore in_memory(&g);
  const NeighborSampler reference(&in_memory, {3});

  auto probe = ShardedGraphStore::Create(g, StoreOptions(8, 1ll << 30));
  ASSERT_TRUE(probe.ok());
  auto store = ShardedGraphStore::Create(
      g, StoreOptions(8, (*probe)->total_bytes() / 4));
  ASSERT_TRUE(store.ok());
  const NeighborSampler sampler(store->get(), {3});

  const std::vector<int32_t> seeds{5, 25, 45, 65};
  for (int batch = 0; batch < 4; ++batch) {
    Rng ref_rng(777 + static_cast<uint64_t>(batch));
    Rng rng(777 + static_cast<uint64_t>(batch));
    ExpectSameSubgraph(reference.Sample(seeds, &ref_rng),
                       sampler.Sample(seeds, &rng));
  }
}

// The batch-prep pipeline's concurrency shape: several producer slots, each
// with its own NeighborSampler, sampling simultaneously against ONE
// ShardedGraphStore whose budget holds only ~2 of 8 shards. Every slot also
// holds a long-lived pin (as a slot does mid-prepare). Must not deadlock —
// Acquire always loads, pins only block eviction — and every subgraph must
// be bit-identical to a serial pass, since draws are keyed on the per-batch
// Rng, never on interleaving. In the TSan build this doubles as a race
// check on the store's Acquire/Release/Evict synchronization.
TEST(SamplerStoreParityTest, ConcurrentSamplersShareATightStore) {
  const HeteroGraph g = RingGraph(160, 2);
  const std::vector<int> fanouts{3, 2};
  constexpr int kThreads = 4;
  constexpr int kBatches = 16;

  // Per-batch seed sets and Rng seeds, shared by both passes.
  std::vector<std::vector<int32_t>> seeds(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    for (int i = 0; i < 5; ++i) {
      seeds[b].push_back(static_cast<int32_t>((37 * b + 13 * i) % 160));
    }
  }
  const auto rng_seed = [](int b) {
    return 991u + static_cast<uint64_t>(b);
  };

  // Serial reference over the in-memory store.
  const InMemoryGraphStore in_memory(&g);
  const NeighborSampler reference(&in_memory, fanouts);
  std::vector<SampledSubgraph> expected(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    Rng rng(rng_seed(b));
    expected[b] = reference.Sample(seeds[b], &rng);
  }

  // One sharded store with a ~2-shard-resident budget.
  auto probe = ShardedGraphStore::Create(g, StoreOptions(8, 1ll << 30));
  ASSERT_TRUE(probe.ok());
  auto store = ShardedGraphStore::Create(
      g, StoreOptions(8, (*probe)->total_bytes() / 4));
  ASSERT_TRUE(store.ok());

  // Threads only write disjoint slots; all gtest assertions run on the
  // main thread after the join.
  std::vector<SampledSubgraph> got(kBatches);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // A slot-style pin held across the whole run: with four of these the
      // pinned set alone exceeds the budget.
      const ShardScope pin = (*store)->Acquire(t * 2);
      const NeighborSampler sampler(store->get(), fanouts);
      for (int b = t; b < kBatches; b += kThreads) {
        Rng rng(rng_seed(b));
        got[b] = sampler.Sample(seeds[b], &rng);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int b = 0; b < kBatches; ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    ExpectSameSubgraph(expected[b], got[b]);
  }
}

}  // namespace
}  // namespace grimp
