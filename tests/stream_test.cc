// Streaming-layer tests: the LiveGraph maintenance invariant (delta-applied
// state bit-identical to a from-scratch rebuild), sharded/in-memory store
// parity under Append, the typed IngestBatch error surface with atomic
// rejection, streaming inference equality through TransformMany, the
// fine-tune hot-swap protocol, and concurrent ingest/impute/serve (the
// TSan variant in tests/CMakeLists.txt reruns this suite).
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "data/temporal.h"
#include "embedding/ngram_init.h"
#include "graph/builder.h"
#include "graph/store.h"
#include "serve/model_registry.h"
#include "stream/live_graph.h"
#include "stream/streaming_engine.h"

namespace grimp {
namespace {

// A small drifting stream; dirty has gaps everywhere except the tick
// column.
TemporalStream SmallStream(int64_t rows, uint64_t seed) {
  TemporalStreamSpec spec;
  spec.rows = rows;
  spec.tick_rows = 16;
  spec.cardinality = 6;
  auto stream = GenerateTemporalStream(spec, seed);
  EXPECT_TRUE(stream.ok()) << stream.status().ToString();
  return std::move(*stream);
}

Table Prefix(const Table& source, int64_t rows) {
  Table out(source.schema());
  for (int64_t r = 0; r < rows; ++r) {
    EXPECT_TRUE(out.AppendRow(RowStrings(source, r)).ok());
  }
  return out;
}

// The feature seed GrimpEngine::Fit derives from options.seed (and
// LiveGraph::Create replicates).
uint64_t FeatureSeed(uint64_t seed) {
  Rng rng(seed);
  rng.Fork();
  return rng.Next();
}

// Neighbor lists of every node under every edge type, read through the
// store's Acquire/Neighbors surface (works for both implementations).
std::vector<std::vector<int32_t>> DumpStore(const GraphStore& store) {
  std::vector<std::vector<int32_t>> runs;
  for (int64_t v = 0; v < store.num_nodes(); ++v) {
    ShardScope scope = store.Acquire(store.ShardOf(v));
    for (int t = 0; t < store.num_edge_types(); ++t) {
      auto [b, e] = scope->Neighbors(t, v);
      runs.emplace_back(b, e);
    }
  }
  return runs;
}

void ExpectStoresEqual(const GraphStore& a, const GraphStore& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edge_types(), b.num_edge_types());
  EXPECT_EQ(DumpStore(a), DumpStore(b));
}

void ExpectTensorsBitEqual(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<size_t>(a.rows()) *
                            static_cast<size_t>(a.cols())),
            0);
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_cols(), b.num_cols());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_cols(); ++c) {
      ASSERT_EQ(a.IsMissing(r, c), b.IsMissing(r, c))
          << "missingness differs at (" << r << ", " << c << ")";
      if (!a.IsMissing(r, c)) {
        ASSERT_EQ(a.column(c).StringAt(r), b.column(c).StringAt(r))
            << "value differs at (" << r << ", " << c << ")";
      }
    }
  }
}

// Rebuilds (graph, features) from scratch over `table` with the same
// segment list and compares every piece of the live state bit for bit.
void ExpectMatchesRebuild(const LiveGraph& live) {
  auto tg_or = GraphBuilder().Build(live.table(), live.segments(), {});
  ASSERT_TRUE(tg_or.ok()) << tg_or.status().ToString();
  const TableGraph& rebuilt = *tg_or;

  ASSERT_EQ(live.tg().rid_nodes, rebuilt.rid_nodes);
  ASSERT_EQ(live.tg().cell_nodes, rebuilt.cell_nodes);

  InMemoryGraphStore rebuilt_store(
      static_cast<const HeteroGraph*>(&rebuilt.graph));
  ExpectStoresEqual(*live.store(), rebuilt_store);

  auto features_or = NgramFeatureInit().Init(
      live.table(), rebuilt, live.options().dim,
      FeatureSeed(live.options().seed));
  ASSERT_TRUE(features_or.ok()) << features_or.status().ToString();
  ExpectTensorsBitEqual(live.node_features(), features_or->node_features);
}

TEST(LiveGraphTest, AppendsAndFillsMatchRebuildAcrossEpochs) {
  const TemporalStream data = SmallStream(/*rows=*/192, /*seed=*/11);
  LiveGraphOptions options;
  options.dim = 8;
  options.seed = 7;
  auto live_or = LiveGraph::Create(Prefix(data.dirty, 96), options);
  ASSERT_TRUE(live_or.ok()) << live_or.status().ToString();
  LiveGraph& live = **live_or;
  ExpectMatchesRebuild(live);

  // Epoch 1: append 32 rows, fill a few of the *appended* rows' gaps plus
  // a few pre-epoch gaps, then flush once.
  for (int64_t r = 96; r < 128; ++r) {
    ASSERT_TRUE(live.AppendRow(RowStrings(data.dirty, r)).ok());
  }
  int filled = 0;
  for (int64_t r = 0; r < 128 && filled < 6; ++r) {
    for (int c = 1; c < live.table().num_cols() && filled < 6; ++c) {
      if (!live.table().IsMissing(r, c)) continue;
      ASSERT_TRUE(
          live.FillCell(r, c, data.truth.column(c).StringAt(r)).ok());
      ++filled;
    }
  }
  ASSERT_GT(filled, 0);
  ASSERT_TRUE(live.dirty());
  ASSERT_TRUE(live.Flush().ok());
  ASSERT_FALSE(live.dirty());
  ASSERT_EQ(live.segments().size(), 2u);
  ExpectMatchesRebuild(live);

  // Epoch 2: appends only — the rebuild must also match after multiple
  // sealed segments, including rows that introduce brand-new dictionary
  // codes (new ticks).
  for (int64_t r = 128; r < 192; ++r) {
    ASSERT_TRUE(live.AppendRow(RowStrings(data.dirty, r)).ok());
  }
  ASSERT_TRUE(live.Flush().ok());
  ASSERT_EQ(live.segments().size(), 3u);
  ExpectMatchesRebuild(live);

  // Flush with nothing pending is a no-op (no empty segment).
  ASSERT_TRUE(live.Flush().ok());
  ASSERT_EQ(live.segments().size(), 3u);
}

TEST(LiveGraphTest, ShardedAppendMatchesInMemory) {
  const TemporalStream data = SmallStream(/*rows=*/160, /*seed=*/3);

  LiveGraphOptions mem_options;
  mem_options.dim = 8;
  mem_options.seed = 5;
  LiveGraphOptions shard_options = mem_options;
  shard_options.graph.shard_mode = ShardMode::kSharded;
  shard_options.graph.num_shards = 4;
  shard_options.graph.max_resident_bytes = 1 << 20;

  auto mem_or = LiveGraph::Create(Prefix(data.dirty, 80), mem_options);
  auto shard_or = LiveGraph::Create(Prefix(data.dirty, 80), shard_options);
  ASSERT_TRUE(mem_or.ok()) << mem_or.status().ToString();
  ASSERT_TRUE(shard_or.ok()) << shard_or.status().ToString();
  LiveGraph& mem = **mem_or;
  LiveGraph& sharded = **shard_or;

  for (int64_t r = 80; r < 160; ++r) {
    const std::vector<std::string> cells = RowStrings(data.dirty, r);
    ASSERT_TRUE(mem.AppendRow(cells).ok());
    ASSERT_TRUE(sharded.AppendRow(cells).ok());
    if ((r + 1) % 32 == 0) {
      ASSERT_TRUE(mem.Flush().ok());
      ASSERT_TRUE(sharded.Flush().ok());
    }
  }
  ASSERT_TRUE(mem.Flush().ok());
  ASSERT_TRUE(sharded.Flush().ok());

  ASSERT_GT(sharded.store()->num_shards(), 1);
  ExpectStoresEqual(*mem.store(), *sharded.store());
  ExpectTensorsBitEqual(mem.node_features(), sharded.node_features());
}

TEST(LiveGraphTest, FillCellTypedErrors) {
  const TemporalStream data = SmallStream(/*rows=*/64, /*seed=*/1);
  LiveGraphOptions options;
  options.dim = 8;
  auto live_or = LiveGraph::Create(Prefix(data.dirty, 64), options);
  ASSERT_TRUE(live_or.ok());
  LiveGraph& live = **live_or;

  EXPECT_EQ(live.FillCell(-1, 1, "x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(live.FillCell(64, 1, "x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(live.FillCell(0, 99, "x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(live.FillCell(0, 1, "").code(), StatusCode::kInvalidArgument);
  // The tick column is never missing: overwriting a present cell is an
  // append-only violation.
  EXPECT_EQ(live.FillCell(0, 0, "tick_99").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(live.dirty());
}

// Streaming-engine fixture: a small fitted engine over the dirty prefix.
class StreamingEngineTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 256;
  static constexpr int64_t kPrefix = 128;

  std::unique_ptr<GrimpEngine> FitEngine(const Table& seed_table) {
    GrimpOptions options;
    options.dim = 8;
    options.shared_hidden = 16;
    options.task_hidden = 16;
    options.max_epochs = 2;
    options.seed = 13;
    options.train.mode = TrainMode::kSampled;
    options.train.batch_size = 64;
    options.train.fanouts = {3, 3};
    auto engine = std::make_unique<GrimpEngine>(options);
    const Status fit = engine->Fit(seed_table);
    EXPECT_TRUE(fit.ok()) << fit.ToString();
    return engine;
  }

  std::unique_ptr<StreamingEngine> MakeEngine(
      const StreamingOptions& options, ModelRegistry* registry = nullptr) {
    Table seed_table = Prefix(data_.dirty, kPrefix);
    std::unique_ptr<GrimpEngine> fitted = FitEngine(seed_table);
    auto engine_or = StreamingEngine::Create(
        std::move(fitted), std::move(seed_table), options, registry);
    EXPECT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    return std::move(*engine_or);
  }

  StreamBatch RowBatch(int64_t begin, int64_t end) {
    StreamBatch batch;
    for (int64_t r = begin; r < end; ++r) {
      batch.rows.push_back(RowStrings(data_.dirty, r));
    }
    return batch;
  }

  TemporalStream data_ = SmallStream(kRows, /*seed=*/17);
};

TEST_F(StreamingEngineTest, IngestRejectsInvalidBatchesAtomically) {
  StreamingOptions options;
  options.window_rows = 32;
  auto stream = MakeEngine(options);
  ASSERT_NE(stream, nullptr);
  const int64_t rows_before = stream->live_rows();
  const int64_t nodes_before = stream->live().store()->num_nodes();

  // A wrong-arity row rejects the whole batch.
  StreamBatch bad_row = RowBatch(kPrefix, kPrefix + 4);
  bad_row.rows[2].pop_back();
  EXPECT_EQ(stream->IngestBatch(bad_row).status().code(),
            StatusCode::kInvalidArgument);

  // A cell update aimed at a present cell rejects the whole batch, even
  // though the rows themselves are fine.
  StreamBatch bad_cell = RowBatch(kPrefix, kPrefix + 4);
  bad_cell.cells.push_back({0, 0, "tick_0"});
  EXPECT_EQ(stream->IngestBatch(bad_cell).status().code(),
            StatusCode::kFailedPrecondition);

  // Out-of-range and duplicate cell targets are typed too.
  StreamBatch oob;
  oob.cells.push_back({rows_before + 99, 1, "x"});
  EXPECT_EQ(stream->IngestBatch(oob).status().code(),
            StatusCode::kOutOfRange);

  // Nothing was applied by any rejected batch.
  EXPECT_EQ(stream->live_rows(), rows_before);
  EXPECT_EQ(stream->live().store()->num_nodes(), nodes_before);

  // The same rows ingest cleanly afterwards, and the stats account for
  // the appended nodes and both-direction edges.
  auto stats_or = stream->IngestBatch(RowBatch(kPrefix, kPrefix + 4));
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  EXPECT_EQ(stats_or->rows_appended, 4);
  EXPECT_EQ(stream->live_rows(), rows_before + 4);
  EXPECT_GT(stats_or->new_nodes, 0);
  EXPECT_GT(stats_or->new_edges, 0);
}

TEST_F(StreamingEngineTest, BatchMayFillCellsOfItsOwnRows) {
  StreamingOptions options;
  options.window_rows = 32;
  auto stream = MakeEngine(options);
  ASSERT_NE(stream, nullptr);

  // Find a gap in the first appended row and fill it in the same batch
  // (coordinates are interpreted against the post-append table).
  StreamBatch batch = RowBatch(kPrefix, kPrefix + 2);
  int gap_col = -1;
  for (int c = 1; c < static_cast<int>(batch.rows[0].size()); ++c) {
    if (batch.rows[0][static_cast<size_t>(c)].empty()) {
      gap_col = c;
      break;
    }
  }
  ASSERT_GE(gap_col, 1);
  batch.cells.push_back(
      {kPrefix, gap_col, data_.truth.column(gap_col).StringAt(kPrefix)});

  auto stats_or = stream->IngestBatch(batch);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status().ToString();
  EXPECT_EQ(stats_or->rows_appended, 2);
  EXPECT_EQ(stats_or->cells_filled, 1);
  EXPECT_FALSE(stream->live().table().IsMissing(kPrefix, gap_col));
}

TEST_F(StreamingEngineTest, ImputedWindowsMatchBatchRebuild) {
  StreamingOptions options;
  options.window_rows = 32;
  options.fanouts = {3, 3};
  auto stream = MakeEngine(options);
  ASSERT_NE(stream, nullptr);

  for (int64_t i = 0; i < 3; ++i) {
    const int64_t begin = kPrefix + i * 32;
    ASSERT_TRUE(stream->IngestBatch(RowBatch(begin, begin + 32)).ok());
    auto window_or = stream->ImputeWindow();
    ASSERT_TRUE(window_or.ok()) << window_or.status().ToString();

    // Batch-rebuild baseline over the same table + segment list: rebuild
    // graph/features from scratch and impute the same window with the same
    // nonce; the sampled blocks are a function of (seed, nonce, graph,
    // window), so the result must be bit-identical.
    const LiveGraph& live = stream->live();
    auto tg_or = GraphBuilder().Build(live.table(), live.segments(), {});
    ASSERT_TRUE(tg_or.ok());
    auto features_or = NgramFeatureInit().Init(
        live.table(), *tg_or, live.options().dim,
        FeatureSeed(live.options().seed));
    ASSERT_TRUE(features_or.ok());
    InMemoryGraphStore store(
        static_cast<const HeteroGraph*>(&tg_or->graph));

    const int64_t row_begin = live.table().num_rows() - 32;
    Table window(live.table().schema());
    for (int64_t r = row_begin; r < live.table().num_rows(); ++r) {
      ASSERT_TRUE(window.AppendRow(RowStrings(live.table(), r)).ok());
    }
    StreamContext ctx;
    ctx.table = &live.table();
    ctx.tg = &*tg_or;
    ctx.store = &store;
    ctx.node_features = &features_or->node_features;
    ctx.row_begin = row_begin;
    ctx.fanouts = {3, 3};
    ctx.nonce = static_cast<uint64_t>(i);  // ImputeWindow's nonce counter
    TransformOptions transform;
    transform.stream = &ctx;
    Table* window_ptr = &window;
    ASSERT_TRUE(stream->engine()
                    .TransformMany(std::span<Table* const>(&window_ptr, 1),
                                   transform)
                    .ok());
    ExpectTablesEqual(*window_or, window);
  }
}

TEST_F(StreamingEngineTest, FineTunePublishesAndHotSwaps) {
  ModelRegistry registry;
  StreamingOptions options;
  options.window_rows = 64;
  options.model_name = "stream";
  auto stream = MakeEngine(options, &registry);
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->serving_version(), "v0");
  {
    auto handle_or = registry.Acquire("stream");
    ASSERT_TRUE(handle_or.ok());
    EXPECT_EQ(handle_or->version(), "v0");
  }

  ASSERT_TRUE(stream->IngestBatch(RowBatch(kPrefix, kPrefix + 64)).ok());
  auto summary_or = stream->FineTune();
  ASSERT_TRUE(summary_or.ok()) << summary_or.status().ToString();
  EXPECT_EQ(stream->serving_version(), "v1");

  // The bare name resolves to the freshly published version, and the old
  // version is gone (drained and unloaded) — a serving stack keyed on
  // name@version can never read a stale model.
  auto handle_or = registry.Acquire("stream");
  ASSERT_TRUE(handle_or.ok());
  EXPECT_EQ(handle_or->version(), "v1");
  EXPECT_TRUE(handle_or->engine().summary().epochs_run >= 0);
  EXPECT_FALSE(registry.Acquire("stream@v0").ok());
}

TEST_F(StreamingEngineTest, ConcurrentIngestImputeAndServe) {
  ModelRegistry registry;
  StreamingOptions options;
  options.window_rows = 32;
  auto stream = MakeEngine(options, &registry);
  ASSERT_NE(stream, nullptr);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  // Writer: ingest the remaining stream in small batches.
  std::thread writer([&] {
    for (int64_t begin = kPrefix; begin + 16 <= kRows; begin += 16) {
      if (!stream->IngestBatch(RowBatch(begin, begin + 16)).ok()) {
        failures.fetch_add(1);
      }
    }
    done.store(true);
  });
  // Reader: impute the live window concurrently with ingestion.
  std::thread reader([&] {
    while (!done.load()) {
      auto window_or = stream->ImputeWindow();
      if (!window_or.ok()) failures.fetch_add(1);
    }
  });
  // Server: resolve and pin the serving model like the TCP front end does.
  std::thread server([&] {
    while (!done.load()) {
      auto handle_or = registry.Acquire("stream");
      if (!handle_or.ok()) failures.fetch_add(1);
    }
  });

  writer.join();
  reader.join();
  server.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(stream->live_rows(), kRows);
}

}  // namespace
}  // namespace grimp
