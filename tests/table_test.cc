#include <gtest/gtest.h>

#include <cmath>

#include "common/csv.h"
#include "table/normalizer.h"
#include "table/table.h"

namespace grimp {
namespace {

Table MakeMixedTable() {
  Schema schema({{"city", AttrType::kCategorical},
                 {"salary", AttrType::kNumerical}});
  Table t(schema);
  EXPECT_TRUE(t.AppendRow({"paris", "100"}).ok());
  EXPECT_TRUE(t.AppendRow({"rome", "200"}).ok());
  EXPECT_TRUE(t.AppendRow({"paris", ""}).ok());
  EXPECT_TRUE(t.AppendRow({"", "400"}).ok());
  return t;
}

TEST(DictionaryTest, CodesCountsAndMode) {
  Dictionary d;
  const int32_t a = d.GetOrAdd("a");
  const int32_t b = d.GetOrAdd("b");
  EXPECT_EQ(d.GetOrAdd("a"), a);
  EXPECT_NE(a, b);
  d.AddOccurrence(a);
  d.AddOccurrence(a);
  d.AddOccurrence(b);
  EXPECT_EQ(d.CountOf(a), 2);
  EXPECT_EQ(d.MostFrequent(), a);
  EXPECT_EQ(d.Find("c"), -1);
  EXPECT_EQ(d.ValueOf(b), "b");
  d.AddOccurrence(a, -2);
  d.AddOccurrence(b, 5);
  EXPECT_EQ(d.MostFrequent(), b);
}

TEST(ColumnTest, CategoricalAppendAndMissing) {
  Column col(Field{"c", AttrType::kCategorical});
  col.AppendCategorical("x");
  col.AppendMissing();
  col.AppendCategorical("y");
  col.AppendCategorical("x");
  EXPECT_EQ(col.num_rows(), 4);
  EXPECT_EQ(col.NumPresent(), 3);
  EXPECT_TRUE(col.IsMissing(1));
  EXPECT_EQ(col.StringAt(0), "x");
  EXPECT_EQ(col.StringAt(1), "");
  EXPECT_EQ(col.dict().CountOf(col.CodeAt(0)), 2);
}

TEST(ColumnTest, SetMissingUpdatesCounts) {
  Column col(Field{"c", AttrType::kCategorical});
  col.AppendCategorical("x");
  col.AppendCategorical("x");
  const int32_t code = col.CodeAt(0);
  col.SetMissing(0);
  EXPECT_EQ(col.dict().CountOf(code), 1);
  EXPECT_TRUE(col.IsMissing(0));
  col.SetCategorical(0, "y");
  EXPECT_EQ(col.StringAt(0), "y");
}

TEST(ColumnTest, NumericalRoundTripAndCanonicalForm) {
  Column col(Field{"n", AttrType::kNumerical});
  col.AppendNumerical(1.5);
  col.AppendMissing();
  col.AppendNumerical(1.5);
  EXPECT_DOUBLE_EQ(col.NumAt(0), 1.5);
  EXPECT_TRUE(std::isnan(col.NumAt(1)));
  // Identical numbers share a dictionary code (graph node identity).
  EXPECT_EQ(col.CodeAt(0), col.CodeAt(2));
  EXPECT_EQ(col.StringAt(0), Column::CanonicalNumeric(1.5));
}

TEST(ColumnTest, SetFromCodeParsesNumeric) {
  Column col(Field{"n", AttrType::kNumerical});
  col.AppendNumerical(2.25);
  col.AppendMissing();
  col.SetFromCode(1, col.CodeAt(0));
  EXPECT_DOUBLE_EQ(col.NumAt(1), 2.25);
}

TEST(ColumnTest, NumericMoments) {
  Column col(Field{"n", AttrType::kNumerical});
  col.AppendNumerical(1.0);
  col.AppendNumerical(3.0);
  col.AppendMissing();
  double mean = 0, std = 0;
  col.NumericMoments(&mean, &std);
  EXPECT_DOUBLE_EQ(mean, 2.0);
  EXPECT_DOUBLE_EQ(std, 1.0);
}

TEST(TableTest, AppendAndBasicStats) {
  Table t = MakeMixedTable();
  EXPECT_EQ(t.num_rows(), 4);
  EXPECT_EQ(t.num_cols(), 2);
  EXPECT_TRUE(t.IsMissing(2, 1));
  EXPECT_TRUE(t.IsMissing(3, 0));
  EXPECT_DOUBLE_EQ(t.MissingFraction(), 2.0 / 8.0);
  EXPECT_EQ(t.NumDirtyRows(), 2);
  // Distinct live values: paris, rome + three numbers.
  EXPECT_EQ(t.NumDistinctValues(), 5);
}

TEST(TableTest, AppendRowRejectsWrongArity) {
  Table t = MakeMixedTable();
  EXPECT_FALSE(t.AppendRow({"only-one"}).ok());
}

TEST(TableTest, FromCsvInfersTypes) {
  auto csv = ParseCsvString("name,age,score\nalice,30,1.5\nbob,?,2.5\n,40,\n");
  ASSERT_TRUE(csv.ok());
  auto table = Table::FromCsv(*csv);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().field(0).type, AttrType::kCategorical);
  EXPECT_EQ(table->schema().field(1).type, AttrType::kNumerical);
  EXPECT_EQ(table->schema().field(2).type, AttrType::kNumerical);
  EXPECT_TRUE(table->IsMissing(1, 1));  // "?"
  EXPECT_TRUE(table->IsMissing(2, 0));  // ""
  EXPECT_DOUBLE_EQ(table->column(1).NumAt(2), 40.0);
}

TEST(TableTest, AllMissingColumnStaysCategorical) {
  auto csv = ParseCsvString("a,b\n?,1\n?,2\n");
  ASSERT_TRUE(csv.ok());
  auto table = Table::FromCsv(*csv);
  ASSERT_TRUE(table.ok());
  // Column with no present values defaults to categorical.
  EXPECT_EQ(table->schema().field(0).type, AttrType::kCategorical);
}

TEST(TableTest, ToCsvRoundTrip) {
  Table t = MakeMixedTable();
  CsvData csv = t.ToCsv();
  EXPECT_EQ(csv.header, (std::vector<std::string>{"city", "salary"}));
  ASSERT_EQ(csv.rows.size(), 4u);
  EXPECT_EQ(csv.rows[0][0], "paris");
  EXPECT_EQ(csv.rows[2][1], "");  // missing serializes as empty
  auto back = Table::FromCsv(csv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 4);
  EXPECT_TRUE(back->IsMissing(2, 1));
  EXPECT_DOUBLE_EQ(back->column(1).NumAt(1), 200.0);
}

TEST(SchemaTest, FieldLookupAndTypeCounts) {
  Schema s({{"a", AttrType::kCategorical},
            {"b", AttrType::kNumerical},
            {"c", AttrType::kNumerical}});
  EXPECT_EQ(s.FieldIndex("b"), 1);
  EXPECT_EQ(s.FieldIndex("nope"), -1);
  EXPECT_EQ(s.NumCategorical(), 1);
  EXPECT_EQ(s.NumNumerical(), 2);
}

TEST(NormalizerTest, NormalizeAndInvert) {
  Table t = MakeMixedTable();  // salary present: 100, 200, 400
  Normalizer norm = Normalizer::Fit(t);
  const double z = norm.Normalize(1, 200.0);
  EXPECT_NEAR(norm.Denormalize(1, z), 200.0, 1e-9);
  // Mean of {100, 200, 400} is 233.33...; its z-score is ~0.
  EXPECT_NEAR(norm.Normalize(1, 700.0 / 3.0), 0.0, 1e-9);
  // Categorical column is untouched (identity stats).
  EXPECT_DOUBLE_EQ(norm.mean(0), 0.0);
  EXPECT_DOUBLE_EQ(norm.stddev(0), 1.0);
}

}  // namespace
}  // namespace grimp
