// Property-based gradient checks: random composite computation graphs over
// random shapes must match finite differences for every parameter.

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "tensor/tape.h"

namespace grimp {
namespace {

struct FuzzCase {
  uint64_t seed;
  int64_t n;       // batch rows
  int64_t blocks;  // column blocks
  int64_t d;       // block width
  int64_t classes;
};

class TapeFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

// Builds a GRIMP-shaped graph: embedding table -> gather -> segment mean
// -> concat -> linear -> attention-style block ops -> cross entropy.
TEST_P(TapeFuzzTest, CompositeGraphMatchesFiniteDifferences) {
  const FuzzCase& fc = GetParam();
  Rng rng(fc.seed);
  const int64_t vocab = 6;

  Parameter table("table", Tensor::GlorotUniform(vocab, fc.d, &rng));
  Parameter w("w", Tensor::GlorotUniform(fc.d * 2, fc.d, &rng));
  Parameter q("q", Tensor::GlorotUniform(1, fc.d, &rng));
  Parameter head("head", Tensor::GlorotUniform(fc.d, fc.classes, &rng));

  // Random gather indices (with some -1 sentinels) and labels.
  std::vector<int32_t> gather_idx;
  for (int64_t i = 0; i < fc.n * fc.blocks; ++i) {
    gather_idx.push_back(rng.Bernoulli(0.15)
                             ? -1
                             : static_cast<int32_t>(rng.Uniform(vocab)));
  }
  // Random segments over the gathered rows.
  std::vector<int32_t> offsets{0};
  std::vector<int32_t> seg_indices;
  for (int64_t s = 0; s < fc.n * fc.blocks; ++s) {
    const int len = static_cast<int>(rng.Uniform(3));
    for (int e = 0; e < len; ++e) {
      seg_indices.push_back(
          static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(vocab))));
    }
    offsets.push_back(static_cast<int32_t>(seg_indices.size()));
  }
  std::vector<int32_t> labels;
  for (int64_t i = 0; i < fc.n; ++i) {
    labels.push_back(i % 4 == 3 ? -1
                                : static_cast<int32_t>(
                                      rng.Uniform(
                                          static_cast<uint64_t>(fc.classes))));
  }

  auto loss = [&](bool) {
    Tape tape;
    auto t = tape.Leaf(&table);
    auto gathered = tape.GatherRows(t, gather_idx);           // (n*b) x d
    auto seg = tape.SegmentMean(t, offsets, seg_indices);     // (n*b) x d
    auto cat = tape.ConcatCols({gathered, seg});              // (n*b) x 2d
    auto h = tape.Relu(tape.MatMul(cat, tape.Leaf(&w)));      // (n*b) x d
    auto v = tape.Reshape(h, fc.n, fc.blocks * fc.d);
    auto scores = tape.ColBlockDot(v, tape.Leaf(&q), fc.blocks);
    auto alpha = tape.RowSoftmax(scores);
    auto ctx = tape.ColBlockWeightedSum(v, alpha, fc.blocks);  // n x d
    auto logits = tape.MatMul(ctx, tape.Leaf(&head));
    auto l = tape.SoftmaxCrossEntropy(logits, labels);
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  for (Parameter* p : {&table, &w, &q, &head}) {
    EXPECT_LT(testing::MaxGradError(p, loss, 2e-2f), 5e-2f)
        << p->name << " seed " << fc.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomShapes, TapeFuzzTest,
    ::testing::Values(FuzzCase{1, 3, 2, 2, 3}, FuzzCase{2, 5, 3, 4, 2},
                      FuzzCase{3, 4, 4, 3, 5}, FuzzCase{4, 6, 2, 5, 4},
                      FuzzCase{5, 2, 5, 2, 2}, FuzzCase{6, 7, 3, 3, 6}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// Regression-head variant with MSE and masking.
class TapeFuzzRegressionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TapeFuzzRegressionTest, RegressionGraphMatchesFiniteDifferences) {
  Rng rng(GetParam());
  const int64_t n = 5, d = 3;
  Parameter w1("w1", Tensor::GlorotUniform(d, d, &rng));
  Parameter b1("b1", Tensor::GlorotUniform(1, d, &rng));
  Parameter w2("w2", Tensor::GlorotUniform(d, 1, &rng));
  const Tensor x = Tensor::GlorotUniform(n, d, &rng);
  std::vector<float> targets, mask;
  for (int64_t i = 0; i < n; ++i) {
    targets.push_back(rng.UniformReal(-1, 1));
    mask.push_back(rng.Bernoulli(0.8) ? 1.0f : 0.0f);
  }
  auto loss = [&](bool) {
    Tape tape;
    auto h = tape.Tanh(tape.AddBias(
        tape.MatMul(tape.Constant(x), tape.Leaf(&w1)), tape.Leaf(&b1)));
    auto out = tape.MatMul(h, tape.Leaf(&w2));
    auto l = tape.MseLoss(out, targets, mask);
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  for (Parameter* p : {&w1, &b1, &w2}) {
    EXPECT_LT(testing::MaxGradError(p, loss), 3e-2f) << p->name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TapeFuzzRegressionTest,
                         ::testing::Values(11, 12, 13, 14, 15));

}  // namespace
}  // namespace grimp
