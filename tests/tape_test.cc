#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"
#include "tensor/tape.h"

namespace grimp {
namespace {

using testing::MaxGradError;

constexpr float kTol = 2e-2f;  // finite differences in float

Parameter MakeParam(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  // Offset away from zero to stay clear of ReLU/equality kinks.
  Tensor t = Tensor::GlorotUniform(rows, cols, &rng);
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] += t[i] >= 0 ? 0.3f : -0.3f;
  }
  return Parameter("p", std::move(t));
}

TEST(TapeTest, ForwardValuesBasicOps) {
  Tape tape;
  auto a = tape.Constant(Tensor::FromVector(1, 2, {1, 2}));
  auto b = tape.Constant(Tensor::FromVector(1, 2, {3, 4}));
  EXPECT_EQ(tape.value(tape.Add(a, b)).at(0, 1), 6.0f);
  EXPECT_EQ(tape.value(tape.Mul(a, b)).at(0, 0), 3.0f);
  EXPECT_EQ(tape.value(tape.Scale(a, 2.0f)).at(0, 1), 4.0f);
  EXPECT_EQ(tape.value(tape.SumAll(b)).scalar(), 7.0f);
}

TEST(TapeTest, ReluTanhSigmoidForward) {
  Tape tape;
  auto x = tape.Constant(Tensor::FromVector(1, 3, {-1.0f, 0.0f, 2.0f}));
  const Tensor& r = tape.value(tape.Relu(x));
  EXPECT_EQ(r.at(0, 0), 0.0f);
  EXPECT_EQ(r.at(0, 2), 2.0f);
  const Tensor& s = tape.value(tape.Sigmoid(x));
  EXPECT_NEAR(s.at(0, 1), 0.5f, 1e-6f);
  const Tensor& t = tape.value(tape.Tanh(x));
  EXPECT_NEAR(t.at(0, 2), std::tanh(2.0f), 1e-6f);
}

TEST(TapeTest, RowSoftmaxRowsSumToOne) {
  Tape tape;
  auto x = tape.Constant(Tensor::FromVector(2, 3, {1, 2, 3, -1, 0, 1}));
  const Tensor& y = tape.value(tape.RowSoftmax(x));
  for (int64_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 3; ++c) sum += y.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  EXPECT_GT(y.at(0, 2), y.at(0, 0));
}

TEST(TapeTest, GatherRowsHandlesMissingSentinel) {
  Tape tape;
  auto t = tape.Constant(Tensor::FromVector(2, 2, {1, 2, 3, 4}));
  auto g = tape.GatherRows(t, {1, -1, 0});
  const Tensor& v = tape.value(g);
  EXPECT_EQ(v.at(0, 0), 3.0f);
  EXPECT_EQ(v.at(1, 0), 0.0f);  // sentinel -> zero row
  EXPECT_EQ(v.at(2, 1), 2.0f);
}

TEST(TapeTest, SegmentMeanComputesMeansAndEmptySegments) {
  Tape tape;
  auto x = tape.Constant(Tensor::FromVector(3, 2, {1, 2, 3, 4, 5, 6}));
  // Segment 0: rows {0, 2}; segment 1: empty; segment 2: row {1}.
  auto s = tape.SegmentMean(x, {0, 2, 2, 3}, {0, 2, 1});
  const Tensor& v = tape.value(s);
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v.at(0, 0), 3.0f);
  EXPECT_EQ(v.at(0, 1), 4.0f);
  EXPECT_EQ(v.at(1, 0), 0.0f);
  EXPECT_EQ(v.at(2, 1), 4.0f);
}

// --- Gradient checks, one per op ------------------------------------------

TEST(TapeGradTest, MatMul) {
  Parameter p = MakeParam(3, 4, 1);
  Rng rng(2);
  const Tensor other = Tensor::GlorotUniform(4, 2, &rng);
  auto loss = [&](bool) {
    Tape tape;
    auto w = tape.Leaf(&p);
    auto out = tape.MatMul(w, tape.Constant(other));
    auto l = tape.MseLoss(tape.Reshape(out, 6, 1),
                          {1, 0, -1, 2, 0.5f, -0.5f});
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, AddBias) {
  Parameter p = MakeParam(1, 3, 3);
  Rng rng(4);
  const Tensor x = Tensor::GlorotUniform(4, 3, &rng);
  auto loss = [&](bool) {
    Tape tape;
    auto out = tape.AddBias(tape.Constant(x), tape.Leaf(&p));
    auto sq = tape.Mul(out, out);
    auto l = tape.SumAll(sq);
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, MulAndScale) {
  Parameter p = MakeParam(2, 3, 5);
  Rng rng(6);
  const Tensor other = Tensor::GlorotUniform(2, 3, &rng);
  auto loss = [&](bool) {
    Tape tape;
    auto w = tape.Leaf(&p);
    auto out = tape.Scale(tape.Mul(w, tape.Constant(other)), 1.5f);
    auto l = tape.SumAll(tape.Mul(out, out));
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, RowScale) {
  Parameter p = MakeParam(3, 2, 7);
  auto loss = [&](bool) {
    Tape tape;
    auto out = tape.RowScale(tape.Leaf(&p), {0.0f, 1.0f, 2.5f});
    auto l = tape.SumAll(tape.Mul(out, out));
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, Activations) {
  for (int which = 0; which < 3; ++which) {
    Parameter p = MakeParam(2, 4, 8 + static_cast<uint64_t>(which));
    auto loss = [&](bool) {
      Tape tape;
      auto x = tape.Leaf(&p);
      Tape::VarId act;
      if (which == 0) act = tape.Relu(x);
      else if (which == 1) act = tape.Tanh(x);
      else act = tape.Sigmoid(x);
      auto l = tape.SumAll(tape.Mul(act, act));
      tape.Backward(l);
      return tape.value(l).scalar();
    };
    EXPECT_LT(MaxGradError(&p, loss), kTol) << "activation " << which;
  }
}

TEST(TapeGradTest, ConcatColsAndReshape) {
  Parameter p = MakeParam(2, 3, 11);
  Rng rng(12);
  const Tensor other = Tensor::GlorotUniform(2, 2, &rng);
  auto loss = [&](bool) {
    Tape tape;
    auto w = tape.Leaf(&p);
    auto cat = tape.ConcatCols({w, tape.Constant(other), w});
    auto flat = tape.Reshape(cat, 16, 1);
    std::vector<float> targets(16, 0.25f);
    auto l = tape.MseLoss(flat, targets);
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, GatherRowsScatterAddsGradient) {
  Parameter p = MakeParam(4, 2, 13);
  auto loss = [&](bool) {
    Tape tape;
    auto t = tape.Leaf(&p);
    // Row 1 gathered twice: gradient must accumulate.
    auto g = tape.GatherRows(t, {1, -1, 1, 3});
    auto l = tape.SumAll(tape.Mul(g, g));
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, SegmentMean) {
  Parameter p = MakeParam(4, 3, 14);
  auto loss = [&](bool) {
    Tape tape;
    auto x = tape.Leaf(&p);
    auto s = tape.SegmentMean(x, {0, 2, 2, 4}, {0, 3, 1, 2});
    auto l = tape.SumAll(tape.Mul(s, s));
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, RowSoftmax) {
  Parameter p = MakeParam(3, 4, 15);
  Rng rng(16);
  const Tensor weights = Tensor::GlorotUniform(3, 4, &rng);
  auto loss = [&](bool) {
    Tape tape;
    auto y = tape.RowSoftmax(tape.Leaf(&p));
    auto l = tape.SumAll(tape.Mul(y, tape.Constant(weights)));
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, ColBlockDotWrtBoth) {
  const int64_t blocks = 3, d = 2, n = 4;
  Parameter v = MakeParam(n, blocks * d, 17);
  Parameter a = MakeParam(1, d, 18);
  Rng rng(19);
  const Tensor weights = Tensor::GlorotUniform(n, blocks, &rng);
  auto build = [&](Tape* tape) {
    auto s = tape->ColBlockDot(tape->Leaf(&v), tape->Leaf(&a), blocks);
    auto l = tape->SumAll(tape->Mul(s, tape->Constant(weights)));
    tape->Backward(l);
    return tape->value(l).scalar();
  };
  auto loss = [&](bool) {
    Tape tape;
    return build(&tape);
  };
  EXPECT_LT(MaxGradError(&v, loss), kTol);
  EXPECT_LT(MaxGradError(&a, loss), kTol);
}

TEST(TapeGradTest, ColBlockWeightedSumWrtBoth) {
  const int64_t blocks = 3, d = 2, n = 4;
  Parameter v = MakeParam(n, blocks * d, 20);
  Parameter alpha = MakeParam(n, blocks, 21);
  auto loss = [&](bool) {
    Tape tape;
    auto ctx = tape.ColBlockWeightedSum(tape.Leaf(&v), tape.Leaf(&alpha),
                                        blocks);
    auto l = tape.SumAll(tape.Mul(ctx, ctx));
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&v, loss), kTol);
  EXPECT_LT(MaxGradError(&alpha, loss), kTol);
}

TEST(TapeGradTest, SoftmaxCrossEntropy) {
  Parameter p = MakeParam(4, 3, 22);
  const std::vector<int32_t> labels{0, 2, -1, 1};  // one ignored row
  auto loss = [&](bool) {
    Tape tape;
    auto l = tape.SoftmaxCrossEntropy(tape.Leaf(&p), labels);
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, SoftmaxCrossEntropyWithClassWeights) {
  Parameter p = MakeParam(3, 3, 23);
  const std::vector<int32_t> labels{0, 1, 2};
  const std::vector<float> weights{2.0f, 1.0f, 0.5f};
  auto loss = [&](bool) {
    Tape tape;
    auto l = tape.SoftmaxCrossEntropy(tape.Leaf(&p), labels, weights);
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, FocalLoss) {
  Parameter p = MakeParam(4, 3, 24);
  const std::vector<int32_t> labels{2, 0, 1, -1};
  auto loss = [&](bool) {
    Tape tape;
    auto l = tape.FocalLoss(tape.Leaf(&p), labels, 2.0f);
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, MseLossWithMask) {
  Parameter p = MakeParam(4, 1, 25);
  const std::vector<float> targets{1.0f, -1.0f, 0.5f, 3.0f};
  const std::vector<float> mask{1.0f, 0.0f, 1.0f, 1.0f};
  auto loss = [&](bool) {
    Tape tape;
    auto l = tape.MseLoss(tape.Leaf(&p), targets, mask);
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&p, loss), kTol);
}

TEST(TapeGradTest, CompositeTwoLayerNetwork) {
  // End-to-end composite: gather -> concat -> matmul -> relu -> CE.
  Parameter table = MakeParam(5, 3, 26);
  Parameter w = MakeParam(6, 4, 27);
  const std::vector<int32_t> labels{1, 3, 0};
  auto loss = [&](bool) {
    Tape tape;
    auto t = tape.Leaf(&table);
    auto g1 = tape.GatherRows(t, {0, 2, 4});
    auto g2 = tape.GatherRows(t, {1, -1, 3});
    auto x = tape.ConcatCols({g1, g2});
    auto h = tape.Relu(tape.MatMul(x, tape.Leaf(&w)));
    auto l = tape.SoftmaxCrossEntropy(h, labels);
    tape.Backward(l);
    return tape.value(l).scalar();
  };
  EXPECT_LT(MaxGradError(&table, loss), kTol);
  EXPECT_LT(MaxGradError(&w, loss), kTol);
}

TEST(TapeTest, CrossEntropyIgnoresAllRowsGracefully) {
  Tape tape;
  auto x = tape.Constant(Tensor::FromVector(2, 2, {1, 2, 3, 4}));
  auto l = tape.SoftmaxCrossEntropy(x, {-1, -1});
  EXPECT_EQ(tape.value(l).scalar(), 0.0f);
  tape.Backward(l);  // must not crash
}

TEST(TapeTest, LeafAccumulatesIntoParameterGrad) {
  Parameter p("p", Tensor::FromVector(1, 2, {1.0f, 2.0f}));
  {
    Tape tape;
    auto l = tape.SumAll(tape.Leaf(&p));
    tape.Backward(l);
  }
  EXPECT_EQ(p.grad.at(0, 0), 1.0f);
  EXPECT_EQ(p.grad.at(0, 1), 1.0f);
  {
    Tape tape;
    auto l = tape.SumAll(tape.Leaf(&p));
    tape.Backward(l);
  }
  // Accumulates across tapes until ZeroGrad.
  EXPECT_EQ(p.grad.at(0, 0), 2.0f);
  p.ZeroGrad();
  EXPECT_EQ(p.grad.at(0, 0), 0.0f);
}

}  // namespace
}  // namespace grimp
