#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace grimp {
namespace {

TEST(TensorTest, ConstructionAndFill) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
  t.Fill(2.5f);
  EXPECT_EQ(t.at(1, 2), 2.5f);
  t.Zero();
  EXPECT_EQ(t.SumAbs(), 0.0f);
}

TEST(TensorTest, ScalarAndFull) {
  Tensor s = Tensor::Scalar(4.0f);
  EXPECT_EQ(s.scalar(), 4.0f);
  Tensor f = Tensor::Full(2, 2, -1.0f);
  EXPECT_EQ(f.Sum(), -4.0f);
  EXPECT_EQ(f.MaxAbs(), 1.0f);
}

TEST(TensorTest, FromVectorLayoutIsRowMajor) {
  Tensor t = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
}

TEST(TensorTest, AxpyAccumulates) {
  Tensor a = Tensor::Full(2, 2, 1.0f);
  Tensor b = Tensor::Full(2, 2, 3.0f);
  a.Axpy(2.0f, b);
  EXPECT_EQ(a.at(0, 0), 7.0f);
}

TEST(TensorTest, GlorotUniformIsBounded) {
  Rng rng(3);
  Tensor t = Tensor::GlorotUniform(10, 20, &rng);
  const float limit = std::sqrt(6.0f / 30.0f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(t[i]), limit);
  }
  // Not all zero.
  EXPECT_GT(t.SumAbs(), 0.0f);
}

TEST(TensorTest, MatMulMatchesHandComputed) {
  Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.rows(), 2);
  ASSERT_EQ(c.cols(), 2);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorTest, TransposedMatMulsAgreeWithExplicitTranspose) {
  Rng rng(5);
  Tensor a = Tensor::GlorotUniform(4, 3, &rng);
  Tensor b = Tensor::GlorotUniform(4, 5, &rng);
  // a^T * b via MatMulTransA.
  Tensor at(3, 4);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  EXPECT_TRUE(AllClose(MatMulTransA(a, b), MatMul(at, b)));

  Tensor x = Tensor::GlorotUniform(2, 3, &rng);
  Tensor y = Tensor::GlorotUniform(5, 3, &rng);
  Tensor yt(3, 5);
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t c = 0; c < 3; ++c) yt.at(c, r) = y.at(r, c);
  }
  EXPECT_TRUE(AllClose(MatMulTransB(x, y), MatMul(x, yt)));
}

TEST(TensorTest, AllCloseDetectsShapeAndValueMismatch) {
  Tensor a = Tensor::Full(2, 2, 1.0f);
  Tensor b = Tensor::Full(2, 2, 1.0f);
  EXPECT_TRUE(AllClose(a, b));
  b.at(1, 1) += 1e-3f;
  EXPECT_FALSE(AllClose(a, b, 1e-5f));
  EXPECT_FALSE(AllClose(a, Tensor::Full(2, 3, 1.0f)));
}

TEST(TensorTest, AllCloseRelativeToleranceScalesWithMagnitude) {
  // 1e6 vs 1e6 + 60: fails any reasonable atol, passes rtol 1e-4.
  Tensor a = Tensor::Full(2, 2, 1.0e6f);
  Tensor b = Tensor::Full(2, 2, 1.0e6f + 60.0f);
  EXPECT_FALSE(AllClose(a, b, 1e-5f));
  EXPECT_TRUE(AllClose(a, b, 1e-5f, 1e-4f));
  // rtol alone must not mask absolute errors near zero.
  Tensor c = Tensor::Full(2, 2, 0.0f);
  Tensor d = Tensor::Full(2, 2, 0.01f);
  EXPECT_FALSE(AllClose(c, d, 1e-5f, 1e-4f));
}

// The blocked parallel GEMMs must agree with the retained naive reference
// over odd/degenerate shapes (vectors, non-multiple-of-tile sizes) at
// 1 thread and N threads.
TEST(TensorTest, BlockedGemmMatchesNaiveAcrossShapesAndThreadCounts) {
  Rng rng(11);
  const struct { int64_t m, k, n; } shapes[] = {
      {1, 1, 1},   {1, 17, 1},  {17, 1, 5},  {1, 5, 33},   {3, 3, 3},
      {4, 8, 8},   {5, 9, 11},  {64, 64, 64}, {65, 33, 17}, {128, 7, 130},
      {33, 128, 9}, {100, 31, 8},
  };
  for (int threads : {1, 4}) {
    ThreadPool::SetGlobalThreads(threads);
    for (const auto& s : shapes) {
      Tensor a = Tensor::RandomNormal(s.m, s.k, 1.0f, &rng);
      Tensor b = Tensor::RandomNormal(s.k, s.n, 1.0f, &rng);
      EXPECT_TRUE(AllClose(MatMul(a, b), MatMulNaive(a, b), 1e-5f, 1e-4f))
          << "MatMul " << s.m << "x" << s.k << "x" << s.n
          << " threads=" << threads;

      Tensor at = Tensor::RandomNormal(s.k, s.m, 1.0f, &rng);
      EXPECT_TRUE(AllClose(MatMulTransA(at, b), MatMulTransANaive(at, b),
                           1e-5f, 1e-4f))
          << "MatMulTransA " << s.m << "x" << s.k << "x" << s.n
          << " threads=" << threads;

      Tensor bt = Tensor::RandomNormal(s.n, s.k, 1.0f, &rng);
      EXPECT_TRUE(AllClose(MatMulTransB(a, bt), MatMulTransBNaive(a, bt),
                           1e-5f, 1e-4f))
          << "MatMulTransB " << s.m << "x" << s.k << "x" << s.n
          << " threads=" << threads;
    }
  }
  ThreadPool::SetGlobalThreads(1);
}

// Fixed chunk boundaries mean the parallel kernel is bit-identical across
// thread counts, not merely close.
TEST(TensorTest, BlockedGemmIsBitIdenticalAcrossThreadCounts) {
  Rng rng(13);
  Tensor a = Tensor::RandomNormal(257, 96, 1.0f, &rng);
  Tensor b = Tensor::RandomNormal(96, 70, 1.0f, &rng);
  ThreadPool::SetGlobalThreads(1);
  Tensor c1 = MatMul(a, b);
  for (int threads : {2, 5, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    Tensor cn = MatMul(a, b);
    ASSERT_TRUE(cn.SameShape(c1));
    for (int64_t i = 0; i < cn.size(); ++i) {
      ASSERT_EQ(cn[i], c1[i]) << "threads=" << threads << " i=" << i;
    }
  }
  ThreadPool::SetGlobalThreads(1);
}

TEST(TensorTest, ParallelAxpyMatchesSerial) {
  Rng rng(17);
  // Above kParallelThreshold so the parallel path actually engages.
  Tensor x = Tensor::RandomNormal(130, 64, 1.0f, &rng);
  Tensor serial = Tensor::Full(130, 64, 0.5f);
  Tensor parallel = serial;
  ThreadPool::SetGlobalThreads(1);
  serial.Axpy(2.0f, x);
  ThreadPool::SetGlobalThreads(4);
  parallel.Axpy(2.0f, x);
  ThreadPool::SetGlobalThreads(1);
  for (int64_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]);
  }
}

}  // namespace
}  // namespace grimp
