#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"

namespace grimp {
namespace {

TEST(TensorTest, ConstructionAndFill) {
  Tensor t(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
  t.Fill(2.5f);
  EXPECT_EQ(t.at(1, 2), 2.5f);
  t.Zero();
  EXPECT_EQ(t.SumAbs(), 0.0f);
}

TEST(TensorTest, ScalarAndFull) {
  Tensor s = Tensor::Scalar(4.0f);
  EXPECT_EQ(s.scalar(), 4.0f);
  Tensor f = Tensor::Full(2, 2, -1.0f);
  EXPECT_EQ(f.Sum(), -4.0f);
  EXPECT_EQ(f.MaxAbs(), 1.0f);
}

TEST(TensorTest, FromVectorLayoutIsRowMajor) {
  Tensor t = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
}

TEST(TensorTest, AxpyAccumulates) {
  Tensor a = Tensor::Full(2, 2, 1.0f);
  Tensor b = Tensor::Full(2, 2, 3.0f);
  a.Axpy(2.0f, b);
  EXPECT_EQ(a.at(0, 0), 7.0f);
}

TEST(TensorTest, GlorotUniformIsBounded) {
  Rng rng(3);
  Tensor t = Tensor::GlorotUniform(10, 20, &rng);
  const float limit = std::sqrt(6.0f / 30.0f);
  for (int64_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(t[i]), limit);
  }
  // Not all zero.
  EXPECT_GT(t.SumAbs(), 0.0f);
}

TEST(TensorTest, MatMulMatchesHandComputed) {
  Tensor a = Tensor::FromVector(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  ASSERT_EQ(c.rows(), 2);
  ASSERT_EQ(c.cols(), 2);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorTest, TransposedMatMulsAgreeWithExplicitTranspose) {
  Rng rng(5);
  Tensor a = Tensor::GlorotUniform(4, 3, &rng);
  Tensor b = Tensor::GlorotUniform(4, 5, &rng);
  // a^T * b via MatMulTransA.
  Tensor at(3, 4);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  EXPECT_TRUE(AllClose(MatMulTransA(a, b), MatMul(at, b)));

  Tensor x = Tensor::GlorotUniform(2, 3, &rng);
  Tensor y = Tensor::GlorotUniform(5, 3, &rng);
  Tensor yt(3, 5);
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t c = 0; c < 3; ++c) yt.at(c, r) = y.at(r, c);
  }
  EXPECT_TRUE(AllClose(MatMulTransB(x, y), MatMul(x, yt)));
}

TEST(TensorTest, AllCloseDetectsShapeAndValueMismatch) {
  Tensor a = Tensor::Full(2, 2, 1.0f);
  Tensor b = Tensor::Full(2, 2, 1.0f);
  EXPECT_TRUE(AllClose(a, b));
  b.at(1, 1) += 1e-3f;
  EXPECT_FALSE(AllClose(a, b, 1e-5f));
  EXPECT_FALSE(AllClose(a, Tensor::Full(2, 3, 1.0f)));
}

}  // namespace
}  // namespace grimp
