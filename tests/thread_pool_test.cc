#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

namespace grimp {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    for (int64_t n : {0, 1, 5, 1000, 4097}) {
      for (int64_t grain : {1, 7, 64, 5000}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
        for (auto& h : hits) h.store(0);
        pool.ParallelFor(0, n, grain, [&](int64_t b, int64_t e) {
          EXPECT_LE(0, b);
          EXPECT_LE(b, e);
          EXPECT_LE(e, n);
          for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
        });
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
              << "threads=" << threads << " n=" << n << " grain=" << grain
              << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, NonZeroBeginIsRespected) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(37, 91, 5, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)].load(), (i >= 37 && i < 91) ? 1 : 0);
  }
}

TEST(ThreadPoolTest, NestedSubmitRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 64, 4, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Nested ParallelFor from inside a chunk body: must complete (inline
      // on this thread) rather than deadlock waiting for busy workers.
      pool.ParallelFor(0, 10, 2, [&](int64_t nb, int64_t ne) {
        total.fetch_add(ne - nb, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 64 * 10);
}

TEST(ThreadPoolTest, RepeatedRunsAreDeterministic) {
  // A chunk-local (non-commutative-order-sensitive) computation: record the
  // chunk boundary pattern and a per-index value derived from it. Both must
  // be identical across repeats and across thread counts, because chunk
  // boundaries depend only on (begin, end, grain).
  auto run = [](int threads) {
    ThreadPool pool(threads);
    const int64_t n = 10000;
    std::vector<int64_t> chunk_of(static_cast<size_t>(n), -1);
    pool.ParallelFor(0, n, 192, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) chunk_of[static_cast<size_t>(i)] = b;
    });
    return chunk_of;
  };
  const auto first = run(1);
  for (int threads : {1, 2, 7}) {
    for (int rep = 0; rep < 3; ++rep) {
      ASSERT_EQ(run(threads), first) << "threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelReduceIsDeterministicAndCorrect) {
  auto sum_to = [](ThreadPool& pool, int64_t n) {
    return pool.ParallelReduce(
        0, n, 1000,
        [](int64_t b, int64_t e) {
          double acc = 0.0;
          for (int64_t i = b; i < e; ++i) acc += static_cast<double>(i);
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  ThreadPool serial(1);
  ThreadPool wide(6);
  const int64_t n = 123457;
  const double expected = static_cast<double>(n - 1) * n / 2.0;
  EXPECT_EQ(sum_to(serial, n), expected);
  EXPECT_EQ(sum_to(wide, n), expected);
  EXPECT_EQ(sum_to(wide, n), sum_to(serial, n));
}

TEST(ThreadPoolTest, GlobalPoolHonorsOverride) {
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 200; ++rep) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 257, 16, [&](int64_t b, int64_t e) {
      int64_t local = 0;
      for (int64_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 256 * 257 / 2);
  }
}

}  // namespace
}  // namespace grimp
