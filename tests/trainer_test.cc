#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "core/engine.h"
#include "core/grimp.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "table/corruption.h"

namespace grimp {
namespace {

// Structured table: b and num are functions of a (same shape as the
// grimp_test fixture, so full-graph accuracy expectations carry over).
Table StructuredTable(int64_t rows) {
  Schema schema({{"a", AttrType::kCategorical},
                 {"b", AttrType::kCategorical},
                 {"num", AttrType::kNumerical}});
  Table t(schema);
  for (int64_t i = 0; i < rows; ++i) {
    const int a = static_cast<int>(i % 4);
    EXPECT_TRUE(t.AppendRow({"a" + std::to_string(a),
                             "b" + std::to_string(a % 2),
                             std::to_string(10 * a)})
                    .ok());
  }
  return t;
}

GrimpOptions SampledOptions() {
  GrimpOptions options;
  options.dim = 16;
  options.shared_hidden = 32;
  options.max_epochs = 50;
  options.seed = 21;
  options.train.mode = TrainMode::kSampled;
  options.train.batch_size = 32;
  options.train.fanouts = {4, 4};
  return options;
}

TEST(TrainerTest, SampledModeFillsEveryCellAndReportsSummary) {
  Table clean = StructuredTable(100);
  const CorruptedTable corrupted = InjectMcar(clean, 0.3, 1);
  GrimpImputer grimp(SampledOptions());
  auto imputed = grimp.Impute(corrupted.dirty);
  ASSERT_TRUE(imputed.ok());
  EXPECT_DOUBLE_EQ(imputed->MissingFraction(), 0.0);
  const TrainSummary& summary = grimp.summary();
  EXPECT_EQ(summary.mode, TrainMode::kSampled);
  EXPECT_GT(summary.epochs_run, 0);
  // ~70 train samples per task at batch 32 means several steps per epoch.
  EXPECT_GT(summary.steps_run, summary.epochs_run);
  EXPECT_GT(summary.num_parameters, 0);
  EXPECT_GT(summary.num_train_samples, 0);
  // Sampled training publishes a per-step loss series.
  EXPECT_GE(MetricsRegistry::Global().GetSeries("grimp.batch.train_loss").size(),
            static_cast<size_t>(summary.epochs_run));
}

TEST(TrainerTest, SampledMatchesFullGraphAccuracy) {
  Table clean = StructuredTable(120);
  const CorruptedTable corrupted = InjectMcar(clean, 0.2, 2);
  GrimpOptions full_options = SampledOptions();
  full_options.train.mode = TrainMode::kFull;
  full_options.train.fanouts.clear();
  GrimpImputer full(full_options);
  GrimpImputer sampled(SampledOptions());
  const RunResult f = RunAlgorithm(clean, corrupted, &full);
  const RunResult s = RunAlgorithm(clean, corrupted, &sampled);
  ASSERT_TRUE(f.status.ok());
  ASSERT_TRUE(s.status.ok());
  // Sampled training trades exactness for per-step cost; on a table whose
  // columns are deterministic functions of each other it must stay close
  // to the full-graph result.
  EXPECT_GT(s.score.Accuracy(), f.score.Accuracy() - 0.15);
  EXPECT_GT(s.score.Accuracy(), 0.7);
}

TEST(TrainerTest, SampledDeterministicForSeed) {
  Table clean = StructuredTable(60);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 4);
  GrimpOptions options = SampledOptions();
  options.max_epochs = 15;
  GrimpImputer a(options), b(options);
  auto ia = a.Impute(corrupted.dirty);
  auto ib = b.Impute(corrupted.dirty);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  for (const CellRef& cell : corrupted.missing_cells) {
    EXPECT_EQ(ia->column(cell.col).StringAt(cell.row),
              ib->column(cell.col).StringAt(cell.row));
  }
}

// Regression test: neighbor sampling draws from per-batch Rng streams keyed
// only on (seed, epoch, batch), never on how work is sharded across
// threads, so the loss trajectory is invariant to the thread count.
TEST(TrainerTest, SampledLossesIndependentOfThreadCount) {
  Table clean = StructuredTable(80);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 9);
  auto run = [&](int num_threads) {
    GrimpOptions options = SampledOptions();
    options.max_epochs = 8;
    options.num_threads = num_threads;
    std::vector<double> losses;
    options.callbacks.on_epoch_end = [&losses](const EpochStats& stats) {
      losses.push_back(stats.train_loss);
      return true;
    };
    GrimpImputer grimp(options);
    auto imputed = grimp.Impute(corrupted.dirty);
    EXPECT_TRUE(imputed.ok());
    return losses;
  };
  const std::vector<double> single = run(1);
  const std::vector<double> multi = run(4);
  ASSERT_FALSE(single.empty());
  ASSERT_EQ(single.size(), multi.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_DOUBLE_EQ(single[i], multi[i]) << "epoch " << i;
  }
}

// Pins GRIMP_PIPELINE for one scope (and restores the suite variant's
// value after), so these tests control the pipeline depth explicitly even
// inside the GRIMP_PIPELINE=0/4 ctest variants.
class ScopedPipelineEnv {
 public:
  // Pins GRIMP_PIPELINE=depth.
  explicit ScopedPipelineEnv(int depth) : ScopedPipelineEnv() {
    setenv("GRIMP_PIPELINE", std::to_string(depth).c_str(), 1);
  }
  // Unsets GRIMP_PIPELINE, letting TrainConfig::pipeline_depth decide.
  ScopedPipelineEnv() {
    const char* old = std::getenv("GRIMP_PIPELINE");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    unsetenv("GRIMP_PIPELINE");
  }
  ~ScopedPipelineEnv() {
    if (had_old_) {
      setenv("GRIMP_PIPELINE", old_.c_str(), 1);
    } else {
      unsetenv("GRIMP_PIPELINE");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

// The tentpole determinism contract: batch contents are a pure function of
// (seed, epoch, batch id), never of who prepared them, so the async
// batch-prep pipeline must reproduce the serial path bit for bit — the
// whole per-epoch loss trajectory AND every imputed cell — at any depth.
TEST(TrainerTest, SampledBitIdenticalAcrossPipelineDepths) {
  Table clean = StructuredTable(80);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 9);
  struct RunOutput {
    std::vector<double> losses;
    std::vector<std::string> cells;
  };
  auto run = [&](int depth) {
    ScopedPipelineEnv env(depth);
    GrimpOptions options = SampledOptions();
    options.max_epochs = 8;
    RunOutput out;
    options.callbacks.on_epoch_end = [&out](const EpochStats& stats) {
      out.losses.push_back(stats.train_loss);
      return true;
    };
    GrimpImputer grimp(options);
    auto imputed = grimp.Impute(corrupted.dirty);
    EXPECT_TRUE(imputed.ok());
    for (const CellRef& cell : corrupted.missing_cells) {
      out.cells.push_back(imputed->column(cell.col).StringAt(cell.row));
    }
    return out;
  };
  const RunOutput serial = run(0);
  ASSERT_FALSE(serial.losses.empty());
  for (const int depth : {2, 4}) {
    const RunOutput piped = run(depth);
    ASSERT_EQ(serial.losses.size(), piped.losses.size()) << "depth " << depth;
    for (size_t i = 0; i < serial.losses.size(); ++i) {
      EXPECT_DOUBLE_EQ(serial.losses[i], piped.losses[i])
          << "depth " << depth << " epoch " << i;
    }
    ASSERT_EQ(serial.cells, piped.cells) << "depth " << depth;
  }
  // The pipelined runs must actually have produced/consumed batches.
  EXPECT_GE(
      MetricsRegistry::Global().GetCounter("train.pipeline.produced").value(),
      1.0);
  EXPECT_GE(
      MetricsRegistry::Global().GetCounter("train.pipeline.consumed").value(),
      1.0);
}

// Same contract along the other axis: at a fixed pipeline depth the loss
// trajectory is still invariant to GRIMP_NUM_THREADS (producers never
// touch the per-batch Rng streams, and the gather chunking is fixed).
TEST(TrainerTest, PipelinedLossesIndependentOfThreadCount) {
  Table clean = StructuredTable(80);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 9);
  ScopedPipelineEnv env(4);
  auto run = [&](int num_threads) {
    GrimpOptions options = SampledOptions();
    options.max_epochs = 8;
    options.num_threads = num_threads;
    std::vector<double> losses;
    options.callbacks.on_epoch_end = [&losses](const EpochStats& stats) {
      losses.push_back(stats.train_loss);
      return true;
    };
    GrimpImputer grimp(options);
    auto imputed = grimp.Impute(corrupted.dirty);
    EXPECT_TRUE(imputed.ok());
    return losses;
  };
  const std::vector<double> single = run(1);
  const std::vector<double> multi = run(4);
  ASSERT_FALSE(single.empty());
  ASSERT_EQ(single.size(), multi.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_DOUBLE_EQ(single[i], multi[i]) << "epoch " << i;
  }
}

// TrainConfig::pipeline_depth is the config-of-record path (the env var
// only overrides it); a config-selected depth must train identically too.
TEST(TrainerTest, PipelineDepthFromConfigMatchesSerial) {
  Table clean = StructuredTable(60);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 4);
  auto run = [&](int depth) {
    GrimpOptions options = SampledOptions();
    options.max_epochs = 10;
    options.train.pipeline_depth = depth;
    GrimpImputer grimp(options);
    auto imputed = grimp.Impute(corrupted.dirty);
    EXPECT_TRUE(imputed.ok());
    return std::move(*imputed);
  };
  // Unset the env so the suite variants don't mask the config knob.
  ScopedPipelineEnv env;
  const Table serial = run(0);
  const Table piped = run(3);
  for (const CellRef& cell : corrupted.missing_cells) {
    EXPECT_EQ(serial.column(cell.col).StringAt(cell.row),
              piped.column(cell.col).StringAt(cell.row));
  }
}

TEST(TrainerTest, EngineFitsSampledAndServesIdenticalTransforms) {
  Table clean = StructuredTable(90);
  const CorruptedTable corrupted = InjectMcar(clean, 0.25, 6);
  GrimpOptions options = SampledOptions();
  options.max_epochs = 20;
  GrimpEngine engine(options);
  ASSERT_TRUE(engine.Fit(corrupted.dirty).ok());
  EXPECT_EQ(engine.summary().mode, TrainMode::kSampled);
  EXPECT_GT(engine.summary().epochs_run, 0);

  // Serving stays full-graph: the same request must decode bit-identically
  // across calls regardless of how the model was trained.
  Table request(clean.schema());
  ASSERT_TRUE(request.AppendRow({"a2", "", ""}).ok());
  auto first = engine.Transform(request);
  auto second = engine.Transform(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(first->MissingFraction(), 0.0);
  for (int c = 0; c < first->num_cols(); ++c) {
    EXPECT_EQ(first->column(c).StringAt(0), second->column(c).StringAt(0));
  }
}

}  // namespace
}  // namespace grimp
